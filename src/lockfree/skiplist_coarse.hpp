// Coarse-locked concurrent skip-list map: one std::mutex around a
// sequential skip list. The golden reference end of the strategy
// spectrum (lockfree/strategy.hpp) — trivially correct because every
// operation runs in mutual exclusion, and maximally blocking because of
// exactly the same fact. struct_matrix measures how far that takes you.
//
// Memory: nodes are allocated and destroyed through the `Mem` policy so
// the same pool-arena churn tests run against all three strategies, but
// exclusive access means erase can Mem::destroy immediately — no retire,
// no grace period, the low-watermark baseline for the matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>

#include "lockfree/lin_stamp.hpp"
#include "lockfree/skiplist_height.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Sorted map from Key to T under a single mutex (requires Key
/// operator< / operator==).
///
/// `Stamp` brackets the linearizing action, which for a coarse lock is
/// any instruction inside the critical section; we bracket the mutation
/// (or deciding read) itself, excluding lock acquisition, so the stamp
/// window is as tight as for the fine-grained variants.
template <typename Key, typename T, typename Stamp = NoStamp,
          typename Mem = mem::Epoch>
class CoarseSkipListMap {
  struct Node {
    Key key;
    T value;
    int height;
    Node* next[kSkipListMaxHeight];
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit CoarseSkipListMap(typename Mem::Domain& domain) : domain_(&domain) {
    for (auto& link : head_) link = nullptr;
  }

  ~CoarseSkipListMap() {
    // Single-threaded teardown.
    Node* node = head_[0];
    while (node) {
      Node* next = node->next[0];
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  CoarseSkipListMap(const CoarseSkipListMap&) = delete;
  CoarseSkipListMap& operator=(const CoarseSkipListMap&) = delete;

  /// Inserts `key`; returns false (and leaves the map unchanged) if
  /// already present.
  bool insert(typename Mem::ThreadHandle& handle, const Key& key,
              const T& value) {
    const auto guard = handle.pin();
    const int height = height_gen_.next();
    // Allocate outside the critical section: the mutex should serialize
    // the structure, not the allocator.
    Node* node = Mem::template create<Node>(handle);
    node->key = key;
    node->value = value;
    node->height = height;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      Node* preds[kSkipListMaxHeight];
      Stamp::pre();
      Node* found = search(key, preds);
      if (found) {
        Stamp::commit();  // the deciding read: key observed present
        Mem::destroy(handle, node);  // never published
        return false;
      }
      for (int level = 0; level < height; ++level) {
        Node** link = preds[level] ? &preds[level]->next[level] : &head_[level];
        node->next[level] = *link;
        *link = node;
      }
      Stamp::commit();  // the last link write makes the key visible
    }
    return true;
  }

  /// Removes `key`; returns false if absent.
  bool erase(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* victim = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      Node* preds[kSkipListMaxHeight];
      Stamp::pre();
      victim = search(key, preds);
      if (!victim) {
        Stamp::commit();  // the deciding read: key observed absent
        return false;
      }
      for (int level = 0; level < victim->height; ++level) {
        Node** link = preds[level] ? &preds[level]->next[level] : &head_[level];
        *link = victim->next[level];
      }
      Stamp::commit();  // the last unlink write removes the key
    }
    // Nobody else can hold a reference: destroy, don't retire.
    Mem::destroy(handle, victim);
    return true;
  }

  /// Membership test.
  bool contains(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    const std::lock_guard<std::mutex> lock(mutex_);
    Node* preds[kSkipListMaxHeight];
    Stamp::pre();
    const bool present = search(key, preds) != nullptr;
    Stamp::commit();
    return present;
  }

  /// Returns the mapped value, or nullopt if absent.
  std::optional<T> get(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    const std::lock_guard<std::mutex> lock(mutex_);
    Node* preds[kSkipListMaxHeight];
    Stamp::pre();
    Node* found = search(key, preds);
    std::optional<T> result;
    if (found) result = found->value;
    Stamp::commit();
    return result;
  }

  /// Number of keys; O(n), for tests.
  std::size_t size_slow(typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (Node* node = head_[0]; node; node = node->next[0]) ++count;
    return count;
  }

  /// Applies `fn` to every (key, value) in key order.
  void for_each(typename Mem::ThreadHandle& handle,
                const std::function<void(const Key&, const T&)>& fn) {
    const auto guard = handle.pin();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Node* node = head_[0]; node; node = node->next[0]) {
      fn(node->key, node->value);
    }
  }

 private:
  /// Fills preds[l] with the last node whose key < `key` at level l
  /// (nullptr when that is the head), and returns the node with `key`
  /// if present. Caller holds mutex_.
  Node* search(const Key& key, Node* preds[kSkipListMaxHeight]) {
    Node* pred = nullptr;
    for (int level = kSkipListMaxHeight - 1; level >= 0; --level) {
      Node* curr = pred ? pred->next[level] : head_[level];
      while (curr && curr->key < key) {
        pred = curr;
        curr = pred->next[level];
      }
      preds[level] = pred;
      if (level == 0 && curr && curr->key == key) return curr;
    }
    return nullptr;
  }

  typename Mem::Domain* domain_;
  std::mutex mutex_;
  detail::SkipListHeightGen height_gen_;
  Node* head_[kSkipListMaxHeight];
};

}  // namespace pwf::lockfree
