#include "lockfree/harness.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace pwf::lockfree {

std::uint64_t HarnessResult::total_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : per_thread) total += t.ops;
  return total;
}

std::uint64_t HarnessResult::total_steps() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : per_thread) total += t.steps;
  return total;
}

double HarnessResult::completion_rate() const noexcept {
  const std::uint64_t steps = total_steps();
  return steps ? static_cast<double>(total_ops()) / static_cast<double>(steps)
               : 0.0;
}

double HarnessResult::ops_per_second() const noexcept {
  return seconds > 0.0 ? static_cast<double>(total_ops()) / seconds : 0.0;
}

namespace {

// Cache-line padded accumulator so threads do not false-share their totals.
struct alignas(64) PaddedTotals {
  std::uint64_t ops = 0;
  std::uint64_t steps = 0;
};

HarnessResult run_impl(std::size_t threads,
                       const std::function<std::uint64_t(std::size_t)>& one_op,
                       std::chrono::milliseconds duration,
                       std::uint64_t ops_per_thread) {
  if (threads == 0) throw std::invalid_argument("harness: need threads >= 1");
  if (!one_op) throw std::invalid_argument("harness: null operation");

  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<PaddedTotals> totals(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  const bool timed = ops_per_thread == 0;
  for (std::size_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      PaddedTotals& mine = totals[tid];
      if (timed) {
        while (!stop.load(std::memory_order_relaxed)) {
          mine.steps += one_op(tid);
          ++mine.ops;
        }
      } else {
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          mine.steps += one_op(tid);
          ++mine.ops;
        }
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  if (timed) {
    std::this_thread::sleep_for(duration);
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();

  HarnessResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.per_thread.reserve(threads);
  for (const auto& t : totals) result.per_thread.push_back({t.ops, t.steps});
  return result;
}

}  // namespace

HarnessResult run_throughput(
    std::size_t threads, std::chrono::milliseconds duration,
    const std::function<std::uint64_t(std::size_t)>& one_op) {
  return run_impl(threads, one_op, duration, /*ops_per_thread=*/0);
}

HarnessResult run_fixed_ops(
    std::size_t threads, std::uint64_t ops_per_thread,
    const std::function<std::uint64_t(std::size_t)>& one_op) {
  if (ops_per_thread == 0) {
    throw std::invalid_argument("run_fixed_ops: need ops_per_thread >= 1");
  }
  return run_impl(threads, one_op, std::chrono::milliseconds(0),
                  ops_per_thread);
}

}  // namespace pwf::lockfree
