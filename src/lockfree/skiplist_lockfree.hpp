// Lock-free concurrent skip-list map — marked-pointer CAS splicing à la
// Fraser / Herlihy–Shavit (ch. 14.4), the lock-free end of the strategy
// spectrum (lockfree/strategy.hpp). The bottom-level list is the
// authoritative set (exactly Harris's list, harris_list.hpp); the upper
// levels are a probabilistic index that can lag behind with no effect on
// correctness. Membership changes linearize at bottom-level CASes: a
// successful insert at the level-0 link CAS, a successful erase at the
// level-0 mark CAS.
//
// Deletion marks a node's next pointers top-down (mark bit packed into
// the pointer word, as in Harris's list, one mark per level), and
// traversals help: find() unlinks any marked node it meets *before*
// crossing it, per level, restarting on CAS failure — the same
// snip-don't-cross discipline harris_list.hpp documents for the era
// reclamation policies.
//
// Retirement discipline (this is where multi-level differs from the flat
// list): helpers snip but NEVER retire — with links on several levels,
// the thread that snips one level cannot know the node is unreachable.
// Only the eraser that won the level-0 mark CAS retires the victim, and
// only after a full find() pass of its own has observed the victim
// absent from the search path at every level (that pass snips any link
// still standing). At that instant no level links to the victim, frozen
// pointers into it belong to nodes that are themselves unreachable, and
// every traversal still holding a reference pinned it before the
// retirement — exactly the precondition mem::Reclaimer requires.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "lockfree/lin_stamp.hpp"
#include "lockfree/skiplist_height.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Lock-free sorted map from Key to T (requires Key operator< /
/// operator==).
///
/// `Stamp` brackets: successful insert at the bottom-level link CAS,
/// successful erase at the bottom-level mark CAS; failing paths and
/// contains linearize at a read inside the bracketed traversal.
template <typename Key, typename T, typename Stamp = NoStamp,
          typename Mem = mem::Epoch>
class LockFreeSkipListMap {
  struct Node {
    Key key;
    T value;
    int height;
    // pack()-encoded: successor pointer | mark bit. A set mark on
    // next[l] means THIS node is logically deleted at level l.
    std::atomic<std::uintptr_t> next[kSkipListMaxHeight];
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit LockFreeSkipListMap(typename Mem::Domain& domain)
      : domain_(&domain) {
    for (auto& link : head_) link.store(0, std::memory_order_relaxed);
  }

  ~LockFreeSkipListMap() {
    // Single-threaded teardown: the bottom level reaches every node
    // (upper levels are a subset of it).
    Node* node = strip(head_[0].load(std::memory_order_relaxed));
    while (node) {
      Node* next = strip(node->next[0].load(std::memory_order_relaxed));
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  LockFreeSkipListMap(const LockFreeSkipListMap&) = delete;
  LockFreeSkipListMap& operator=(const LockFreeSkipListMap&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(typename Mem::ThreadHandle& handle, const Key& key,
              const T& value) {
    const auto guard = handle.pin();
    const int height = height_gen_.next();
    Node* node = nullptr;
    while (true) {
      Node* preds[kSkipListMaxHeight];
      Node* succs[kSkipListMaxHeight];
      Stamp::pre();  // brackets the duplicate-found path's deciding read
      if (find(handle, key, preds, succs)) {
        Stamp::commit();  // observed `key` present (unmarked, level 0)
        if (node) Mem::destroy(handle, node);  // never published
        return false;
      }
      Stamp::commit();
      if (!node) {
        node = Mem::template create<Node>(handle);
        node->key = key;
        node->value = value;
        node->height = height;
      }
      for (int level = 0; level < height; ++level) {
        node->next[level].store(pack(succs[level], false),
                                std::memory_order_relaxed);
      }
      // The bottom-level link CAS publishes the key (linearization
      // point); the upper levels are linked best-effort afterwards.
      std::uintptr_t expected = pack(succs[0], false);
      Stamp::pre();
      if (!link_at(preds, 0)
               .compare_exchange_strong(expected, pack(node, false),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        continue;  // window moved; rescan (node stays private)
      }
      Stamp::commit();  // the level-0 link CAS linearizes the insert

      for (int level = 1; level < height; ++level) {
        while (true) {
          // A concurrent eraser may already be deleting the new node;
          // stop indexing it (its level-l mark freezes next[l]).
          const std::uintptr_t node_next =
              node->next[level].load(std::memory_order_acquire);
          if (marked(node_next)) return true;
          std::uintptr_t link_expected = pack(succs[level], false);
          if (link_at(preds, level)
                  .compare_exchange_strong(link_expected, pack(node, false),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
            break;
          }
          // Window moved: recompute it. The rescan may also discover the
          // node got erased meanwhile (gone from level 0) — stop then.
          if (!find(handle, key, preds, succs) || succs[0] != node) {
            return true;
          }
          if (strip(node_next) != succs[level]) {
            std::uintptr_t swing = node_next;
            if (!node->next[level].compare_exchange_strong(
                    swing, pack(succs[level], false),
                    std::memory_order_acq_rel, std::memory_order_acquire)) {
              return true;  // next[level] changed: only a mark can do that
            }
          }
        }
      }
      return true;
    }
  }

  /// Removes `key`; returns false if absent.
  bool erase(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    while (true) {
      Node* preds[kSkipListMaxHeight];
      Node* succs[kSkipListMaxHeight];
      Stamp::pre();  // brackets the absent path's deciding read
      if (!find(handle, key, preds, succs)) {
        Stamp::commit();  // observed `key` absent
        return false;
      }
      Stamp::commit();
      Node* victim = succs[0];

      // Mark the index levels top-down (idempotent: any thread's mark
      // counts; victims of the race just retry the CAS).
      for (int level = victim->height - 1; level >= 1; --level) {
        std::uintptr_t next = victim->next[level].load(std::memory_order_acquire);
        while (!marked(next)) {
          victim->next[level].compare_exchange_weak(next, mark(next),
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire);
        }
      }

      // The bottom-level mark decides the race: exactly one eraser wins.
      std::uintptr_t next = victim->next[0].load(std::memory_order_acquire);
      while (true) {
        if (marked(next)) return false;  // another eraser won
        Stamp::pre();
        if (victim->next[0].compare_exchange_weak(next, mark(next),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
          Stamp::commit();  // the level-0 mark CAS linearizes the erase
          break;
        }
      }

      // Snip every remaining link (find() unlinks marked nodes on its
      // path); when it reports the key gone the victim is unreachable at
      // every level and — as the mark winner — we alone retire it.
      find(handle, key, preds, succs);
      Mem::retire(handle, victim);
      return true;
    }
  }

  /// Membership test. Uses the helping find(): traversals must unlink
  /// marked nodes rather than cross their frozen successor pointers
  /// (see harris_list.hpp for the era-reclamation argument).
  bool contains(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* preds[kSkipListMaxHeight];
    Node* succs[kSkipListMaxHeight];
    Stamp::pre();
    const bool present = find(handle, key, preds, succs);
    Stamp::commit();
    return present;
  }

  /// Returns the mapped value, or nullopt if absent.
  std::optional<T> get(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* preds[kSkipListMaxHeight];
    Node* succs[kSkipListMaxHeight];
    Stamp::pre();
    std::optional<T> result;
    if (find(handle, key, preds, succs)) result = succs[0]->value;
    Stamp::commit();
    return result;
  }

  /// Number of unmarked bottom-level nodes; O(n), for tests (call
  /// quiescent).
  std::size_t size_slow(typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    std::size_t count = 0;
    Node* curr = strip(Mem::load(handle, head_[0]));
    while (curr) {
      const std::uintptr_t next = Mem::load(handle, curr->next[0]);
      if (!marked(next)) ++count;
      curr = strip(next);
    }
    return count;
  }

  /// Applies `fn` to every live (key, value) in order (quiescent use).
  void for_each(typename Mem::ThreadHandle& handle,
                const std::function<void(const Key&, const T&)>& fn) {
    const auto guard = handle.pin();
    Node* curr = strip(Mem::load(handle, head_[0]));
    while (curr) {
      const std::uintptr_t next = Mem::load(handle, curr->next[0]);
      if (!marked(next)) fn(curr->key, curr->value);
      curr = strip(next);
    }
  }

 private:
  static constexpr std::uintptr_t kMark = 1;

  static bool marked(std::uintptr_t p) noexcept { return p & kMark; }
  static std::uintptr_t mark(std::uintptr_t p) noexcept { return p | kMark; }
  static Node* strip(std::uintptr_t p) noexcept {
    return reinterpret_cast<Node*>(p & ~kMark);
  }
  static std::uintptr_t pack(Node* p, bool is_marked) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) | (is_marked ? kMark : 0);
  }

  std::atomic<std::uintptr_t>& link_at(Node* preds[kSkipListMaxHeight],
                                       int level) noexcept {
    return preds[level] ? preds[level]->next[level] : head_[level];
  }

  /// Fills preds/succs at every level, unlinking marked nodes on the
  /// way (helping; restarts on a lost snip CAS). Returns true iff an
  /// unmarked node with `key` sits at level 0 (then succs[0] is it).
  /// Helpers snip but never retire — see the retirement note on top.
  bool find(typename Mem::ThreadHandle& handle, const Key& key,
            Node* preds[kSkipListMaxHeight], Node* succs[kSkipListMaxHeight]) {
  restart:
    Node* pred = nullptr;
    for (int level = kSkipListMaxHeight - 1; level >= 0; --level) {
      std::uintptr_t curr_raw =
          Mem::load(handle, pred ? pred->next[level] : head_[level]);
      Node* curr = strip(curr_raw);
      while (curr) {
        const std::uintptr_t next_raw = Mem::load(handle, curr->next[level]);
        if (marked(next_raw)) {
          // curr is logically deleted at this level: unlink before
          // crossing it.
          std::uintptr_t expected = pack(curr, false);
          std::atomic<std::uintptr_t>& link =
              pred ? pred->next[level] : head_[level];
          if (!link.compare_exchange_strong(
                  expected, pack(strip(next_raw), false),
                  std::memory_order_acq_rel, std::memory_order_acquire)) {
            goto restart;  // the predecessor changed under us
          }
          curr = strip(next_raw);
          continue;
        }
        if (!(curr->key < key)) break;
        pred = curr;
        curr = strip(next_raw);
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return succs[0] && succs[0]->key == key;
  }

  typename Mem::Domain* domain_;
  detail::SkipListHeightGen height_gen_;
  std::atomic<std::uintptr_t> head_[kSkipListMaxHeight];  // never marked
};

}  // namespace pwf::lockfree
