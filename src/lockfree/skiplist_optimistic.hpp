// Optimistic fine-grained concurrent skip-list map — the lazy skip list
// of Herlihy–Shavit (ch. 14.3), the middle of the strategy spectrum
// (lockfree/strategy.hpp). Traversals take no locks; an update locks only
// the predecessor nodes it will write (plus the victim for erase),
// re-validates the locked window, and retries on conflict. Deletion is
// lazy: `marked` logically removes a node before it is physically
// unlinked, and `fully_linked` hides a node until its whole tower is up.
//
// Deadlock freedom: locks are taken in ascending level order along one
// key's predecessor path, so each thread's successive lock requests have
// non-increasing keys; a wait cycle would force two distinct nodes to
// have equal keys.
//
// Memory reclamation (the `Mem` policy, mem/reclaimer.hpp): every link
// read is a protected load, and the validate step is what keeps frozen
// pointers safe to cross — a marked node's next pointers never change
// (writers validate `!pred->marked`), and a marked-but-linked node's
// successor cannot be unlinked (its eraser would have to validate the
// marked node as predecessor, which fails). So any node a traversal
// reaches was reachable at some instant after the traversal pinned,
// which under the era policies blocks its reclamation. The victim is
// retired only after it is unlinked at every level under validated
// locks.
//
// `Validate = false` is the `novalidate` mutant (skiplist-novalidate in
// the structure catalog): updates lock and write without re-checking the
// window, so racing updates lose insertions and unlink the wrong window
// — the classic bug this design's validation exists to prevent. The
// mutant *leaks* erased nodes instead of retiring them: with validation
// gone, a misplaced unlink can leave the victim reachable, so freeing it
// would turn a logical bug into a use-after-free; leaking keeps the
// mutant's failures purely logical (NOT-LINEARIZABLE, not a crash).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>

#include "lockfree/backoff.hpp"
#include "lockfree/lin_stamp.hpp"
#include "lockfree/skiplist_height.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Sorted map from Key to T with per-node spinlocks (requires Key
/// operator< / operator==).
///
/// `Stamp` brackets: successful insert linearizes at the fully_linked
/// store, successful erase at the marked store; the failing paths and
/// contains linearize at a read inside the bracketed traversal.
template <typename Key, typename T, typename Stamp = NoStamp,
          typename Mem = mem::Epoch, bool Validate = true>
class OptimisticSkipListMap {
  struct Node {
    Key key;
    T value;
    int height;
    // Spin-then-yield lock (std::atomic, not std::mutex: nodes live in
    // pool-arena blocks and the lock must be trivially reusable).
    std::atomic<std::uint32_t> lock_word{0};
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    std::atomic<Node*> next[kSkipListMaxHeight];

    void lock() noexcept {
      Backoff backoff(64);
      std::uint32_t expected = 0;
      while (!lock_word.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
        expected = 0;
        backoff.pause();
      }
    }
    void unlock() noexcept { lock_word.store(0, std::memory_order_release); }
  };

 public:
  static_assert(mem::Reclaimer<Mem>);

  /// Node footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(Node);

  explicit OptimisticSkipListMap(typename Mem::Domain& domain)
      : domain_(&domain) {
    head_.height = kSkipListMaxHeight;
    for (auto& link : head_.next) link.store(nullptr, std::memory_order_relaxed);
    head_.fully_linked.store(true, std::memory_order_relaxed);
  }

  ~OptimisticSkipListMap() {
    // Single-threaded teardown. Unlinked-but-leaked mutant nodes
    // (Validate = false) are not reachable from head_ and stay leaked.
    Node* node = head_.next[0].load(std::memory_order_relaxed);
    while (node) {
      Node* next = node->next[0].load(std::memory_order_relaxed);
      Mem::dealloc(*domain_, node);
      node = next;
    }
  }

  OptimisticSkipListMap(const OptimisticSkipListMap&) = delete;
  OptimisticSkipListMap& operator=(const OptimisticSkipListMap&) = delete;

  /// Inserts `key`; returns false if already present.
  bool insert(typename Mem::ThreadHandle& handle, const Key& key,
              const T& value) {
    const auto guard = handle.pin();
    const int height = height_gen_.next();
    // Allocated on the first attempt that needs it, reused across
    // validation retries, never while holding node locks (Mem::create
    // can throw PoolExhausted).
    Node* node = nullptr;
    Backoff backoff(256);
    while (true) {
      Node* preds[kSkipListMaxHeight];
      Node* succs[kSkipListMaxHeight];
      Stamp::pre();  // brackets the duplicate-found path's deciding read
      Node* found = find(handle, key, preds, succs);
      if (found) {
        if (!found->marked.load(std::memory_order_acquire)) {
          // Wait out a concurrent inserter's linking phase, then report
          // the duplicate. Linearizes at the read that saw it unmarked.
          while (!found->fully_linked.load(std::memory_order_acquire)) {
            backoff.pause();
          }
          Stamp::commit();
          if (node) Mem::destroy(handle, node);  // never published
          return false;
        }
        Stamp::commit();
        if constexpr (Validate) {
          // Found a logically deleted node: wait for its unlink, rescan.
          backoff.pause();
          continue;
        }
        // Mutant: an unvalidated unlink can leave a marked node reachable
        // forever (a concurrent writer re-links it from a stale snapshot),
        // so waiting for the unlink would hang. Link in front of it — one
        // more observable corruption for the checker to flag.
      } else {
        Stamp::commit();
      }
      if (!node) {
        node = Mem::template create<Node>(handle);
        node->key = key;
        node->value = value;
        node->height = height;
      }

      // The mutant widens its own race: yielding between the search and
      // the locks invites a concurrent writer to move the predecessor
      // window, which validation would catch and Validate=false links
      // under anyway (same technique as treiber_stack_untagged's
      // hazard-window yield — the seeded bug must fire on one core for
      // the checker-validation capture to mean anything).
      if constexpr (!Validate) std::this_thread::yield();

      // Lock the predecessor window, ascending levels, skipping repeats.
      int locked_to = -1;
      bool valid = true;
      Node* last_locked = nullptr;
      for (int level = 0; level < height; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          pred->lock();
          last_locked = pred;
        }
        locked_to = level;
        if constexpr (Validate) {
          Node* succ = succs[level];
          valid = !pred->marked.load(std::memory_order_acquire) &&
                  (!succ || !succ->marked.load(std::memory_order_acquire)) &&
                  pred->next[level].load(std::memory_order_acquire) == succ;
          if (!valid) break;
        }
      }
      if (!valid) {
        unlock_window(preds, locked_to);
        backoff.pause();
        continue;
      }

      for (int level = 0; level < height; ++level) {
        node->next[level].store(succs[level], std::memory_order_relaxed);
      }
      for (int level = 0; level < height; ++level) {
        preds[level]->next[level].store(node, std::memory_order_release);
      }
      Stamp::pre();
      node->fully_linked.store(true, std::memory_order_release);
      Stamp::commit();  // the fully_linked store linearizes the insert
      unlock_window(preds, locked_to);
      return true;
    }
  }

  /// Removes `key`; returns false if absent.
  bool erase(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* victim = nullptr;
    bool marked_by_us = false;
    int height = 0;
    Backoff backoff(256);
    while (true) {
      Node* preds[kSkipListMaxHeight];
      Node* succs[kSkipListMaxHeight];
      Stamp::pre();  // brackets the absent path's deciding read
      Node* found = find(handle, key, preds, succs);
      if (!marked_by_us) {
        if (!found || !found->fully_linked.load(std::memory_order_acquire) ||
            found->marked.load(std::memory_order_acquire)) {
          Stamp::commit();  // observed `key` absent (or already deleted)
          return false;
        }
        Stamp::commit();
        victim = found;
        height = victim->height;
        victim->lock();
        if (victim->marked.load(std::memory_order_acquire)) {
          victim->unlock();  // another eraser won
          return false;
        }
        Stamp::pre();
        victim->marked.store(true, std::memory_order_release);
        Stamp::commit();  // the marked store linearizes the erase
        marked_by_us = true;
      } else {
        Stamp::commit();  // rescan for the unlink; already linearized
      }

      // Mutant race-widening yield; see insert.
      if constexpr (!Validate) std::this_thread::yield();

      // Lock the predecessor window and physically unlink.
      int locked_to = -1;
      bool valid = true;
      Node* last_locked = nullptr;
      for (int level = 0; level < height; ++level) {
        Node* pred = preds[level];
        if (pred != last_locked) {
          pred->lock();
          last_locked = pred;
        }
        locked_to = level;
        if constexpr (Validate) {
          valid = !pred->marked.load(std::memory_order_acquire) &&
                  pred->next[level].load(std::memory_order_acquire) == victim;
          if (!valid) break;
        }
      }
      if (!valid) {
        unlock_window(preds, locked_to);
        backoff.pause();
        continue;  // window moved; victim stays marked, rescan and retry
      }
      for (int level = height - 1; level >= 0; --level) {
        preds[level]->next[level].store(
            victim->next[level].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      victim->unlock();
      unlock_window(preds, locked_to);
      if constexpr (Validate) {
        Mem::retire(handle, victim);
      }
      // Validate = false leaks the victim (see the mutant note above).
      return true;
    }
  }

  /// Membership test: lock-free traversal; present means fully linked
  /// and not logically deleted.
  bool contains(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* preds[kSkipListMaxHeight];
    Node* succs[kSkipListMaxHeight];
    Stamp::pre();
    Node* found = find(handle, key, preds, succs);
    const bool present =
        found && found->fully_linked.load(std::memory_order_acquire) &&
        !found->marked.load(std::memory_order_acquire);
    Stamp::commit();
    return present;
  }

  /// Returns the mapped value, or nullopt if absent.
  std::optional<T> get(typename Mem::ThreadHandle& handle, const Key& key) {
    const auto guard = handle.pin();
    Node* preds[kSkipListMaxHeight];
    Node* succs[kSkipListMaxHeight];
    Stamp::pre();
    Node* found = find(handle, key, preds, succs);
    std::optional<T> result;
    if (found && found->fully_linked.load(std::memory_order_acquire) &&
        !found->marked.load(std::memory_order_acquire)) {
      result = found->value;
    }
    Stamp::commit();
    return result;
  }

  /// Number of live keys; O(n), for tests (call quiescent).
  std::size_t size_slow(typename Mem::ThreadHandle& handle) {
    const auto guard = handle.pin();
    std::size_t count = 0;
    for (Node* node = head_.next[0].load(std::memory_order_acquire); node;
         node = node->next[0].load(std::memory_order_acquire)) {
      if (node->fully_linked.load(std::memory_order_acquire) &&
          !node->marked.load(std::memory_order_acquire)) {
        ++count;
      }
    }
    return count;
  }

  /// Applies `fn` to every live (key, value) in order (quiescent use).
  void for_each(typename Mem::ThreadHandle& handle,
                const std::function<void(const Key&, const T&)>& fn) {
    const auto guard = handle.pin();
    for (Node* node = head_.next[0].load(std::memory_order_acquire); node;
         node = node->next[0].load(std::memory_order_acquire)) {
      if (node->fully_linked.load(std::memory_order_acquire) &&
          !node->marked.load(std::memory_order_acquire)) {
        fn(node->key, node->value);
      }
    }
  }

 private:
  /// Fills preds/succs at every level and returns the node with `key`
  /// (whatever its marked/fully_linked state) if one is linked at level
  /// 0, else nullptr. Lock-free; all link reads are protected loads.
  Node* find(typename Mem::ThreadHandle& handle, const Key& key,
             Node* preds[kSkipListMaxHeight],
             Node* succs[kSkipListMaxHeight]) {
    Node* pred = &head_;
    Node* found = nullptr;
    for (int level = kSkipListMaxHeight - 1; level >= 0; --level) {
      Node* curr = Mem::load(handle, pred->next[level]);
      while (curr && curr->key < key) {
        pred = curr;
        curr = Mem::load(handle, pred->next[level]);
      }
      preds[level] = pred;
      succs[level] = curr;
      if (level == 0 && curr && curr->key == key) found = curr;
    }
    return found;
  }

  /// Unlocks the distinct predecessors locked for levels [0, locked_to].
  static void unlock_window(Node* preds[kSkipListMaxHeight],
                            int locked_to) noexcept {
    Node* last = nullptr;
    for (int level = 0; level <= locked_to; ++level) {
      if (preds[level] != last) {
        preds[level]->unlock();
        last = preds[level];
      }
    }
  }

  typename Mem::Domain* domain_;
  detail::SkipListHeightGen height_gen_;
  Node head_;  // sentinel, key ignored (it is never compared), never freed
};

}  // namespace pwf::lockfree
