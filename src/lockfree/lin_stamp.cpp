#include "lockfree/lin_stamp.hpp"

#include "util/tsc.hpp"

namespace pwf::lockfree {

namespace {

// Written only while no instrumented thread runs (bind happens before
// thread spawn / after join), read concurrently afterwards.
std::atomic<std::uint64_t>* g_ticket = nullptr;

thread_local LinStampRecord tl_record;

// TscStamp keeps its own record so a capture switching clocks can never
// read a stale bracket left by the other policy.
thread_local LinStampRecord tl_tsc_record;

}  // namespace

void TicketStamp::pre() noexcept {
  if (g_ticket == nullptr) return;
  tl_record.pre = g_ticket->fetch_add(1, std::memory_order_acq_rel);
  tl_record.has_pre = true;
}

void TicketStamp::commit() noexcept {
  if (g_ticket == nullptr) return;
  tl_record.post = g_ticket->fetch_add(1, std::memory_order_acq_rel);
  tl_record.has_post = true;
}

void TicketStamp::reset() noexcept { tl_record = LinStampRecord{}; }

LinStampRecord TicketStamp::record() noexcept { return tl_record; }

void TicketStamp::bind(std::atomic<std::uint64_t>* ticket) noexcept {
  g_ticket = ticket;
}

void TscStamp::pre() noexcept {
  tl_tsc_record.pre = util::tsc_monotonic();
  tl_tsc_record.has_pre = true;
}

void TscStamp::commit() noexcept {
  tl_tsc_record.post = util::tsc_monotonic();
  tl_tsc_record.has_post = true;
}

void TscStamp::reset() noexcept { tl_tsc_record = LinStampRecord{}; }

LinStampRecord TscStamp::record() noexcept { return tl_tsc_record; }

}  // namespace pwf::lockfree
