// A universal lock-free object following exactly the SCU(q, s) pattern
// (paper, Section 5 and Herlihy's universal construction, reference [9]):
// the entire object state lives behind one atomic pointer; an operation
// scans (loads the state pointer and reads the state), computes the updated
// state locally (the "preamble" work is the state copy), and validates with
// a single CAS on the pointer. Old states are reclaimed through EBR.
//
// Any sequential object gets a lock-free concurrent implementation this
// way, which is why the paper's analysis of SCU covers "a concurrent
// version of every sequential object".
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "lockfree/ebr.hpp"
#include "lockfree/lin_stamp.hpp"

namespace pwf::lockfree {

/// Universal lock-free wrapper around a copyable sequential state.
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// apply linearizes at its successful state-pointer CAS, read at the
/// state-pointer load. NoStamp compiles the hooks away.
template <typename State, typename Stamp = NoStamp>
class ScuObject {
 public:
  explicit ScuObject(EbrDomain& domain, State initial = State{})
      : domain_(&domain), state_(new State(std::move(initial))) {}

  ~ScuObject() { delete state_.load(std::memory_order_relaxed); }

  ScuObject(const ScuObject&) = delete;
  ScuObject& operator=(const ScuObject&) = delete;

  /// Applies `update` atomically: `update` receives a mutable copy of the
  /// current state and may return a value. Retries on contention (the CAS
  /// validation step). Returns {update's result, CAS attempts}.
  ///
  /// `update` must be a pure function of its argument — it can run many
  /// times, once per attempt.
  template <typename F>
  auto apply(EbrThreadHandle& handle, F&& update)
      -> std::pair<decltype(update(std::declval<State&>())), std::uint64_t> {
    const EbrGuard guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      State* current = state_.load(std::memory_order_acquire);
      auto* proposed = new State(*current);  // scan: copy the state
      auto result = update(*proposed);       // local computation
      ++attempts;
      Stamp::pre();
      if (state_.compare_exchange_strong(current, proposed,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        Stamp::commit();  // the state-pointer CAS linearizes the update
        handle.retire(current);
        return {std::move(result), attempts};
      }
      delete proposed;  // validation failed: rescan
    }
  }

  /// Read-only snapshot access: `reader` receives a const reference to a
  /// state that is kept alive for the duration of the call.
  template <typename F>
  auto read(EbrThreadHandle& handle, F&& reader) const {
    const EbrGuard guard = handle.pin();
    Stamp::pre();
    const State* current = state_.load(std::memory_order_acquire);
    Stamp::commit();  // the state-pointer load linearizes the read
    return reader(*current);
  }

 private:
  EbrDomain* domain_;
  std::atomic<State*> state_;
};

}  // namespace pwf::lockfree
