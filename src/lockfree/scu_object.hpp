// A universal lock-free object following exactly the SCU(q, s) pattern
// (paper, Section 5 and Herlihy's universal construction, reference [9]):
// the entire object state lives behind one atomic pointer; an operation
// scans (loads the state pointer and reads the state), computes the updated
// state locally (the "preamble" work is the state copy), and validates with
// a single CAS on the pointer. Old states are reclaimed through the
// pwf::mem policy given as `Mem`.
//
// Any sequential object gets a lock-free concurrent implementation this
// way, which is why the paper's analysis of SCU covers "a concurrent
// version of every sequential object".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "lockfree/lin_stamp.hpp"
#include "mem/epoch.hpp"

namespace pwf::lockfree {

/// Universal lock-free wrapper around a copyable sequential state.
///
/// `Stamp` is the linearization-point stamping policy (lin_stamp.hpp):
/// apply linearizes at its successful state-pointer CAS, read at the
/// state-pointer load. NoStamp compiles the hooks away.
///
/// `Mem` is the reclamation policy (mem/reclaimer.hpp); the default
/// mem::Epoch preserves the historical EbrDomain-based signatures.
template <typename State, typename Stamp = NoStamp, typename Mem = mem::Epoch>
class ScuObject {
 public:
  static_assert(mem::Reclaimer<Mem>);

  /// State footprint — size mem::WaitFreePoolDomain block_bytes with this.
  static constexpr std::size_t kNodeBytes = sizeof(State);

  explicit ScuObject(typename Mem::Domain& domain, State initial = State{})
      : domain_(&domain),
        state_(Mem::template create<State>(domain, std::move(initial))) {}

  ~ScuObject() {
    Mem::dealloc(*domain_, state_.load(std::memory_order_relaxed));
  }

  ScuObject(const ScuObject&) = delete;
  ScuObject& operator=(const ScuObject&) = delete;

  /// Applies `update` atomically: `update` receives a mutable copy of the
  /// current state and may return a value. Retries on contention (the CAS
  /// validation step). Returns {update's result, CAS attempts}.
  ///
  /// `update` must be a pure function of its argument — it can run many
  /// times, once per attempt.
  template <typename F>
  auto apply(typename Mem::ThreadHandle& handle, F&& update)
      -> std::pair<decltype(update(std::declval<State&>())), std::uint64_t> {
    const auto guard = handle.pin();
    std::uint64_t attempts = 0;
    while (true) {
      // The state copy dereferences `current`, so the load is protected.
      State* current = Mem::load(handle, state_);
      State* proposed =
          Mem::template create<State>(handle, *current);  // scan: copy
      auto result = update(*proposed);  // local computation
      ++attempts;
      Stamp::pre();
      if (state_.compare_exchange_strong(current, proposed,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        Stamp::commit();  // the state-pointer CAS linearizes the update
        Mem::retire(handle, current);
        return {std::move(result), attempts};
      }
      Mem::destroy(handle, proposed);  // validation failed: rescan
    }
  }

  /// Read-only snapshot access: `reader` receives a const reference to a
  /// state that is kept alive for the duration of the call.
  template <typename F>
  auto read(typename Mem::ThreadHandle& handle, F&& reader) const {
    const auto guard = handle.pin();
    Stamp::pre();
    const State* current = Mem::load(handle, state_);
    Stamp::commit();  // the state-pointer load linearizes the read
    return reader(*current);
  }

 private:
  typename Mem::Domain* domain_;
  std::atomic<State*> state_;
};

}  // namespace pwf::lockfree
