#include "lockfree/ebr.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace pwf::lockfree {

EbrDomain::EbrDomain(std::size_t max_threads) : slots_(max_threads) {
  if (max_threads == 0) {
    throw std::invalid_argument("EbrDomain: max_threads must be >= 1");
  }
}

EbrDomain::~EbrDomain() {
  // Final flush: all handles must be gone by now; free whatever they
  // handed over, crediting freed_total_ so the teardown invariant
  // retired_count() == 0 (equivalently retired == freed) holds.
  {
    std::lock_guard<std::mutex> lock(orphan_mu_);
    for (auto& [ptr, deleter, bytes] : orphans_) {
      deleter(ptr);
      note_freed(1, bytes);
    }
    orphans_.clear();
  }
  // Leak-accounting invariant: every retirement has been freed. Firing
  // means a thread handle outlived its domain (undefined behaviour the
  // assert turns into a loud teardown failure).
  assert(retired_count() == 0 &&
         "EbrDomain destroyed with nodes still retired");
}

void EbrDomain::note_retired(std::size_t bytes) noexcept {
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      retired_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = peak_retired_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_retired_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void EbrDomain::note_freed(std::size_t count, std::size_t bytes) noexcept {
  retired_total_.fetch_sub(count, std::memory_order_relaxed);
  freed_total_.fetch_add(count, std::memory_order_relaxed);
  retired_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void EbrDomain::try_advance() noexcept {
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_seq_cst)) continue;
    if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
    if (slot.local_epoch.load(std::memory_order_seq_cst) != epoch) {
      return;  // someone is still in an older epoch
    }
  }
  std::uint64_t expected = epoch;
  global_epoch_.compare_exchange_strong(expected, epoch + 1,
                                        std::memory_order_seq_cst);
}

EbrGuard::EbrGuard(EbrThreadHandle& handle) noexcept : handle_(handle) {
  handle_.enter();
}

EbrGuard::~EbrGuard() { handle_.exit(); }

EbrThreadHandle::EbrThreadHandle(EbrDomain& domain)
    : domain_(domain), slot_index_(domain.slots_.size()) {
  for (std::size_t i = 0; i < domain_.slots_.size(); ++i) {
    bool expected = false;
    if (domain_.slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      slot_index_ = i;
      break;
    }
  }
  if (slot_index_ == domain_.slots_.size()) {
    throw std::runtime_error(
        "EbrThreadHandle: no free slots (domain capacity " +
        std::to_string(domain_.slots_.size()) +
        "; raise the EbrDomain max_threads constructor argument)");
  }
}

EbrThreadHandle::~EbrThreadHandle() {
  collect();
  if (!retired_.empty()) {
    // Hand the remainder to the domain. The nodes stay counted as
    // retired — they have not been freed yet — so retired_count()
    // drops to zero only when the domain destructor runs the deleters.
    std::lock_guard<std::mutex> lock(domain_.orphan_mu_);
    for (const Retired& r : retired_) {
      domain_.orphans_.emplace_back(r.ptr, r.deleter, r.bytes);
    }
    retired_.clear();
  }
  domain_.slots_[slot_index_].pinned.store(false, std::memory_order_seq_cst);
  domain_.slots_[slot_index_].in_use.store(false, std::memory_order_seq_cst);
}

void EbrThreadHandle::enter() noexcept {
  EbrDomain::Slot& slot = domain_.slots_[slot_index_];
  slot.pinned.store(true, std::memory_order_seq_cst);
  slot.local_epoch.store(domain_.global_epoch_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
}

void EbrThreadHandle::exit() noexcept {
  domain_.slots_[slot_index_].pinned.store(false, std::memory_order_seq_cst);
}

void EbrThreadHandle::retire_erased(void* p, void (*deleter)(void*),
                                    std::size_t bytes) {
  retired_.push_back(
      {p, deleter, domain_.global_epoch_.load(std::memory_order_seq_cst),
       bytes});
  domain_.note_retired(bytes);
  if (retired_.size() >= kScanThreshold) collect();
}

void EbrThreadHandle::collect() noexcept {
  domain_.try_advance();
  const std::uint64_t safe_before =
      domain_.global_epoch_.load(std::memory_order_seq_cst);
  // Entries retired at epoch e are safe once global >= e + 2.
  std::size_t kept = 0;
  std::size_t freed = 0;
  std::size_t freed_bytes = 0;
  for (Retired& r : retired_) {
    if (r.epoch + 2 <= safe_before) {
      r.deleter(r.ptr);
      ++freed;
      freed_bytes += r.bytes;
    } else {
      retired_[kept++] = r;
    }
  }
  retired_.resize(kept);
  if (freed) domain_.note_freed(freed, freed_bytes);
}

}  // namespace pwf::lockfree
