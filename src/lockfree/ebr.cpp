#include "lockfree/ebr.hpp"

#include <stdexcept>

namespace pwf::lockfree {

EbrDomain::EbrDomain() = default;

EbrDomain::~EbrDomain() {
  // All handles must be gone by now; free whatever they handed over.
  std::lock_guard<std::mutex> lock(orphan_mu_);
  for (auto& [ptr, deleter] : orphans_) deleter(ptr);
  orphans_.clear();
}

void EbrDomain::try_advance() noexcept {
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_seq_cst)) continue;
    if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
    if (slot.local_epoch.load(std::memory_order_seq_cst) != epoch) {
      return;  // someone is still in an older epoch
    }
  }
  std::uint64_t expected = epoch;
  global_epoch_.compare_exchange_strong(expected, epoch + 1,
                                        std::memory_order_seq_cst);
}

EbrGuard::EbrGuard(EbrThreadHandle& handle) noexcept : handle_(handle) {
  handle_.enter();
}

EbrGuard::~EbrGuard() { handle_.exit(); }

EbrThreadHandle::EbrThreadHandle(EbrDomain& domain)
    : domain_(domain), slot_index_(EbrDomain::kMaxThreads) {
  for (std::size_t i = 0; i < EbrDomain::kMaxThreads; ++i) {
    bool expected = false;
    if (domain_.slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      slot_index_ = i;
      break;
    }
  }
  if (slot_index_ == EbrDomain::kMaxThreads) {
    throw std::runtime_error("EbrThreadHandle: no free slots");
  }
}

EbrThreadHandle::~EbrThreadHandle() {
  collect();
  if (!retired_.empty()) {
    std::lock_guard<std::mutex> lock(domain_.orphan_mu_);
    for (const Retired& r : retired_) {
      domain_.orphans_.emplace_back(r.ptr, r.deleter);
    }
    domain_.retired_total_.fetch_sub(retired_.size(),
                                     std::memory_order_relaxed);
    retired_.clear();
  }
  domain_.slots_[slot_index_].pinned.store(false, std::memory_order_seq_cst);
  domain_.slots_[slot_index_].in_use.store(false, std::memory_order_seq_cst);
}

void EbrThreadHandle::enter() noexcept {
  EbrDomain::Slot& slot = domain_.slots_[slot_index_];
  slot.pinned.store(true, std::memory_order_seq_cst);
  slot.local_epoch.store(domain_.global_epoch_.load(std::memory_order_seq_cst),
                         std::memory_order_seq_cst);
}

void EbrThreadHandle::exit() noexcept {
  domain_.slots_[slot_index_].pinned.store(false, std::memory_order_seq_cst);
}

void EbrThreadHandle::retire_erased(void* p, void (*deleter)(void*)) {
  retired_.push_back(
      {p, deleter, domain_.global_epoch_.load(std::memory_order_seq_cst)});
  domain_.retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (retired_.size() >= kScanThreshold) collect();
}

void EbrThreadHandle::collect() noexcept {
  domain_.try_advance();
  const std::uint64_t safe_before =
      domain_.global_epoch_.load(std::memory_order_seq_cst);
  // Entries retired at epoch e are safe once global >= e + 2.
  std::size_t kept = 0;
  std::size_t freed = 0;
  for (Retired& r : retired_) {
    if (r.epoch + 2 <= safe_before) {
      r.deleter(r.ptr);
      ++freed;
    } else {
      retired_[kept++] = r;
    }
  }
  retired_.resize(kept);
  if (freed) {
    domain_.retired_total_.fetch_sub(freed, std::memory_order_relaxed);
    domain_.freed_total_.fetch_add(freed, std::memory_order_relaxed);
  }
}

}  // namespace pwf::lockfree
