// The iterated balls-into-bins game of Section 6.1.3.
//
// Each of n bins is associated with a process of the scan-validate
// algorithm and holds 0, 1 or 2 balls between resets:
//   1 ball  <-> the process is about to Read            (2 steps from done)
//   2 balls <-> the process is about to CAS (current)   (1 step from done)
//   0 balls <-> the process is about to CAS (stale)     (3 steps from done)
// Each step throws one ball into a uniformly random bin (= the uniform
// scheduler picks that process). When a bin reaches three balls the
// operation completes and a *reset* ends the phase: the full bin goes back
// to one ball and every two-ball bin is emptied (those processes' CAS
// values just became stale).
//
// The game is, state for state, the system Markov chain of SCU(0,1); the
// phase length is the system latency W. Lemma 8 bounds the expected phase
// length by min(2*alpha*n/sqrt(a_i), 3*alpha*n/b_i^(1/3)) and Lemma 9 shows
// phases with a_i < n/c ("range three") are rare and short-lived.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pwf::ballsbins {

/// Which of the paper's three ranges a phase-start state (a_i, b_i) is in.
enum class Range { kFirst, kSecond, kThird };

/// Classifies a_i: first range a in [n/3, n], second [n/c, n/3), third
/// [0, n/c). The paper's c is "a large constant"; default 10.
Range classify_range(std::size_t a, std::size_t n, double c = 10.0);

/// Snapshot of one completed phase.
struct PhaseRecord {
  std::size_t start_a = 0;     ///< bins with one ball at phase start
  std::size_t start_b = 0;     ///< empty bins at phase start
  std::uint64_t length = 0;    ///< ball throws in the phase
};

/// The iterated game.
class IteratedBallsBins {
 public:
  /// Starts with every bin holding one ball (all processes about to read).
  IteratedBallsBins(std::size_t n, Xoshiro256pp rng);

  /// Throws one ball; returns true iff this throw completed a phase
  /// (a bin reached three balls and the reset was applied).
  bool step();

  /// Runs until `phases` more phases complete; returns their records.
  std::vector<PhaseRecord> run_phases(std::size_t phases);

  std::size_t num_bins() const noexcept { return balls_.size(); }
  /// Bins currently holding exactly `k` balls (k in {0,1,2}).
  std::size_t bins_with(int k) const;
  /// a = bins with one ball; b = empty bins (between resets a+b+c = n).
  std::size_t a() const noexcept { return count_[1]; }
  std::size_t b() const noexcept { return count_[0]; }

  std::uint64_t steps() const noexcept { return steps_; }
  std::uint64_t phases_completed() const noexcept { return phases_; }

  /// (a, b) at the start of the current (incomplete) phase.
  std::size_t phase_start_a() const noexcept { return phase_start_a_; }
  std::size_t phase_start_b() const noexcept { return phase_start_b_; }

  /// Length so far of the current phase.
  std::uint64_t current_phase_length() const noexcept { return phase_len_; }

 private:
  std::vector<std::uint8_t> balls_;
  std::size_t count_[3] = {0, 0, 0};  // bins with 0/1/2 balls
  Xoshiro256pp rng_;
  std::uint64_t steps_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t phase_len_ = 0;
  std::size_t phase_start_a_ = 0;
  std::size_t phase_start_b_ = 0;
};

/// Aggregate phase-length statistics bucketed by the paper's ranges.
struct RangeStats {
  StreamingStats length_first;
  StreamingStats length_second;
  StreamingStats length_third;
  std::uint64_t phases_first = 0;
  std::uint64_t phases_second = 0;
  std::uint64_t phases_third = 0;

  void add(const PhaseRecord& rec, std::size_t n, double c = 10.0);
};

}  // namespace pwf::ballsbins
