#include "ballsbins/game.hpp"

#include <stdexcept>

namespace pwf::ballsbins {

Range classify_range(std::size_t a, std::size_t n, double c) {
  const auto da = static_cast<double>(a);
  const auto dn = static_cast<double>(n);
  if (da >= dn / 3.0) return Range::kFirst;
  if (da >= dn / c) return Range::kSecond;
  return Range::kThird;
}

IteratedBallsBins::IteratedBallsBins(std::size_t n, Xoshiro256pp rng)
    : balls_(n, 1), rng_(rng) {
  if (n == 0) throw std::invalid_argument("IteratedBallsBins: need n >= 1");
  count_[0] = 0;
  count_[1] = n;
  count_[2] = 0;
  phase_start_a_ = n;
  phase_start_b_ = 0;
}

std::size_t IteratedBallsBins::bins_with(int k) const {
  if (k < 0 || k > 2) throw std::out_of_range("bins_with: k in {0,1,2}");
  return count_[k];
}

bool IteratedBallsBins::step() {
  ++steps_;
  ++phase_len_;
  const std::size_t bin = static_cast<std::size_t>(rng_.uniform(balls_.size()));
  const std::uint8_t before = balls_[bin];
  if (before < 2) {
    --count_[before];
    ++count_[before + 1];
    ++balls_[bin] ;
    return false;
  }
  // The bin reaches three balls: reset. The full bin returns to one ball;
  // every two-ball bin is emptied.
  for (std::size_t i = 0; i < balls_.size(); ++i) {
    if (balls_[i] == 2) balls_[i] = 0;
  }
  balls_[bin] = 1;
  count_[0] += count_[2] - 1;  // all other two-ball bins become empty
  count_[1] += 1;
  count_[2] = 0;
  ++phases_;
  phase_len_ = 0;
  phase_start_a_ = count_[1];
  phase_start_b_ = count_[0];
  return true;
}

std::vector<PhaseRecord> IteratedBallsBins::run_phases(std::size_t phases) {
  std::vector<PhaseRecord> records;
  records.reserve(phases);
  while (records.size() < phases) {
    const std::size_t start_a = phase_start_a_;
    const std::size_t start_b = phase_start_b_;
    std::uint64_t len = current_phase_length();
    while (!step()) ++len;
    records.push_back({start_a, start_b, len + 1});
  }
  return records;
}

void RangeStats::add(const PhaseRecord& rec, std::size_t n, double c) {
  switch (classify_range(rec.start_a, n, c)) {
    case Range::kFirst:
      length_first.add(static_cast<double>(rec.length));
      ++phases_first;
      break;
    case Range::kSecond:
      length_second.add(static_cast<double>(rec.length));
      ++phases_second;
      break;
    case Range::kThird:
      length_third.add(static_cast<double>(rec.length));
      ++phases_third;
      break;
  }
}

}  // namespace pwf::ballsbins
