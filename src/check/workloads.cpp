#include "check/workloads.hpp"

#include <stdexcept>

#include "check/catalog.hpp"

namespace pwf::check {

// The workload registry is the sim projection of the structure catalog:
// every catalog entry with a sim twin, in catalog order. The catalog
// keeps the legacy registry order stable (experiments derive per-workload
// seeds from the index here), so growth happens by *appending* catalog
// rows, never by reordering.
const std::vector<Workload>& workloads() {
  static const std::vector<Workload> kWorkloads = [] {
    std::vector<Workload> out;
    for (const CatalogEntry& entry : structure_catalog()) {
      if (!entry.sim) continue;
      out.push_back(Workload{entry.sim->workload, entry.spec_kind,
                             entry.expect_linearizable, entry.sim->default_n,
                             entry.sim->default_steps, entry.sim->note,
                             entry.sim->build});
    }
    return out;
  }();
  return kWorkloads;
}

const Workload& find_workload(const std::string& name) {
  for (const Workload& w : workloads()) {
    if (w.name == name) return w;
  }
  throw std::invalid_argument("find_workload: unknown workload '" + name +
                              "'");
}

}  // namespace pwf::check
