#include "check/workloads.hpp"

#include <stdexcept>
#include <utility>

#include "check/mutants.hpp"
#include "core/algorithms.hpp"
#include "core/sim_queue.hpp"
#include "core/sim_rcu.hpp"
#include "core/sim_stack.hpp"
#include "waitfree/sim_object.hpp"

namespace pwf::check {

namespace {

using core::Simulation;

/// Wraps a machine factory so every machine gets the trace sink attached
/// at construction.
core::StepMachineFactory traced(core::StepMachineFactory inner,
                                core::OpTraceSink* sink) {
  return [inner = std::move(inner), sink](std::size_t pid, std::size_t n) {
    auto machine = inner(pid, n);
    machine->set_trace(sink);
    return machine;
  };
}

std::vector<Workload> make_workloads() {
  std::vector<Workload> out;

  // --- stock structures ------------------------------------------------------
  out.push_back(Workload{
      "sim-stack", "stack", true, 3, 240,
      "Treiber stack (tagged head), alternating push/pop",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        constexpr std::size_t kSlots = 2;
        Simulation::Options opt;
        opt.num_registers = core::SimStack::registers_required(n, kSlots);
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(core::SimStack::factory(kSlots), sink),
            std::move(sched), opt);
      }});

  out.push_back(Workload{
      "sim-queue", "queue", true, 3, 240,
      "Michael-Scott queue (generation-stamped), alternating enq/deq",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        constexpr std::size_t kSlots = 2;
        Simulation::Options opt;
        opt.num_registers = core::SimQueue::registers_required(n, kSlots);
        opt.seed = seed;
        opt.initial_values = core::SimQueue::initial_values();
        return std::make_unique<Simulation>(
            n, traced(core::SimQueue::factory(kSlots), sink),
            std::move(sched), opt);
      }});

  out.push_back(Workload{
      "sim-rcu", "rcu", true, 3, 240,
      "RCU version register, 1 writer + readers, deep recycling pool",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        core::RcuConfig cfg;
        cfg.writers = 1;
        cfg.payload_len = 2;
        // Deep pool: within a bounded schedule no reader can straddle
        // enough updates to see a recycled block, so reads never tear.
        cfg.slots_per_writer = 64;
        Simulation::Options opt;
        opt.num_registers = core::SimRcu::registers_required(cfg);
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(core::SimRcu::factory(cfg), sink), std::move(sched),
            opt);
      }});

  out.push_back(Workload{
      "fai-counter", "counter", true, 3, 200,
      "Algorithm 5 fetch-and-increment on augmented CAS",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        Simulation::Options opt;
        opt.num_registers = core::FetchAndIncrement::registers_required();
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(core::FetchAndIncrement::factory(), sink),
            std::move(sched), opt);
      }});

  out.push_back(Workload{
      "sharded-counter", "multi-counter", true, 4, 400,
      "register file of independent fetch-inc counters (multi-object)",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        constexpr std::size_t kCounters = 8;
        Simulation::Options opt;
        opt.num_registers =
            core::ShardedCounter::registers_required(kCounters);
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(core::ShardedCounter::factory(kCounters), sink),
            std::move(sched), opt);
      }});

  // --- seeded mutants --------------------------------------------------------
  out.push_back(Workload{
      "mut-racy-counter", "counter", false, 3, 64,
      "MUTANT: increment as read + blind write (lost updates)",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        Simulation::Options opt;
        opt.num_registers = RacyCounter::registers_required();
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(RacyCounter::factory(), sink), std::move(sched), opt);
      }});

  out.push_back(Workload{
      "mut-aba-stack", "stack", false, 3, 240,
      "MUTANT: Treiber stack with untagged head CAS (ABA)",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        constexpr std::size_t kSlots = 1;  // tight pool: reuse is immediate
        Simulation::Options opt;
        opt.num_registers = AbaSimStack::registers_required(n, kSlots);
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(AbaSimStack::factory(kSlots), sink), std::move(sched),
            opt);
      }});

  out.push_back(Workload{
      "mut-nohelp-queue", "queue", false, 3, 240,
      "MUTANT: MS queue whose dequeue never helps the lagging tail",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        constexpr std::size_t kSlots = 1;
        Simulation::Options opt;
        opt.num_registers = NoHelpSimQueue::registers_required(n, kSlots);
        opt.seed = seed;
        opt.initial_values = NoHelpSimQueue::initial_values();
        return std::make_unique<Simulation>(
            n, traced(NoHelpSimQueue::factory(kSlots), sink),
            std::move(sched), opt);
      }});

  out.push_back(Workload{
      "mut-torn-rcu", "rcu", false, 3, 240,
      "MUTANT: RCU with a single-slot pool (no grace period; torn reads)",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        core::RcuConfig cfg;
        cfg.writers = 1;
        cfg.payload_len = 3;
        cfg.slots_per_writer = 1;  // writer reuses the block immediately
        Simulation::Options opt;
        opt.num_registers = core::SimRcu::registers_required(cfg);
        opt.seed = seed;
        return std::make_unique<Simulation>(
            n, traced(core::SimRcu::factory(cfg), sink), std::move(sched),
            opt);
      }});

  // --- wait-free universal construction (src/waitfree) ----------------------
  // Registered after the mutants: experiments derive per-workload seeds
  // from the registry index, so appending keeps every pre-existing
  // workload's exploration seeds (and minimized witnesses) unchanged.
  out.push_back(Workload{
      "wf-counter", "counter", true, 3, 400,
      "wait-free universal construction, fetch-inc (src/waitfree)",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        waitfree::SimWfConfig cfg;
        cfg.kind = waitfree::SimWfKind::kCounter;
        // Aggressive knobs: announce after 2 losses, probe every other
        // op, so short exploration schedules exercise the slow path too.
        cfg.max_failures = 2;
        cfg.help_delay = 2;
        Simulation::Options opt;
        opt.num_registers = waitfree::WaitFreeSim::registers_required(n, cfg);
        opt.seed = seed;
        opt.initial_values = waitfree::WaitFreeSim::initial_values(n, cfg);
        return std::make_unique<Simulation>(
            n, traced(waitfree::WaitFreeSim::factory(cfg), sink),
            std::move(sched), opt);
      }});

  out.push_back(Workload{
      "wf-stack", "stack", true, 3, 400,
      "wait-free universal construction, alternating push/pop",
      [](std::size_t n, std::uint64_t seed,
         std::unique_ptr<core::Scheduler> sched, core::OpTraceSink* sink) {
        waitfree::SimWfConfig cfg;
        cfg.kind = waitfree::SimWfKind::kStack;
        cfg.max_failures = 2;
        cfg.help_delay = 2;
        Simulation::Options opt;
        opt.num_registers = waitfree::WaitFreeSim::registers_required(n, cfg);
        opt.seed = seed;
        opt.initial_values = waitfree::WaitFreeSim::initial_values(n, cfg);
        return std::make_unique<Simulation>(
            n, traced(waitfree::WaitFreeSim::factory(cfg), sink),
            std::move(sched), opt);
      }});

  return out;
}

}  // namespace

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> kWorkloads = make_workloads();
  return kWorkloads;
}

const Workload& find_workload(const std::string& name) {
  for (const Workload& w : workloads()) {
    if (w.name == name) return w;
  }
  throw std::invalid_argument("find_workload: unknown workload '" + name +
                              "'");
}

}  // namespace pwf::check
