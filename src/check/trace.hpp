// Deterministic schedule record/replay.
//
// A ScheduleTrace captures everything that made a simulated execution
// what it was: the per-step scheduler decisions, the crash plan, and the
// seed (the step machines themselves are deterministic, so the trace
// pins the entire execution). Replaying a trace through ReplayScheduler
// reproduces the run bit-identically — same schedule, same crash resets,
// same operation history, same fingerprint — on any host, any thread
// count, any number of times. That is the foundation the failing-trace
// minimizer and the witness format stand on.
//
// Serialized format (pwf-trace/1, line-oriented, '#' comments):
//   pwf-trace/1
//   workload <name>
//   n <processes>
//   seed <seed>
//   crash <tau> <pid>          (zero or more, sorted by tau)
//   sched <tok> <tok> ...      (one or more lines; token = pid or pid*count)
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/simulation.hpp"

namespace pwf::check {

/// One crash event: process `pid` leaves the active set at time `tau`.
struct CrashEvent {
  std::uint64_t tau = 0;
  std::uint32_t pid = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// A recorded (or synthesized) schedule.
struct ScheduleTrace {
  std::string workload;  ///< the workload this trace drives (informative)
  std::uint32_t n = 0;   ///< number of processes
  std::uint64_t seed = 0;  ///< simulation seed (machines are deterministic,
                           ///< kept for provenance and RNG-using futures)
  std::vector<std::uint32_t> steps;  ///< scheduler decision per time step
  std::vector<CrashEvent> crashes;   ///< sorted by tau

  friend bool operator==(const ScheduleTrace&, const ScheduleTrace&) = default;

  /// FNV-1a over (n, seed, steps, crashes); workload name excluded.
  std::uint64_t fingerprint() const noexcept;

  void serialize(std::ostream& os) const;
  std::string serialize() const;
  /// Throws std::invalid_argument on malformed input.
  static ScheduleTrace parse(std::istream& is);
  static ScheduleTrace parse(const std::string& text);
};

/// Options for Session::minimize.
struct MinimizeOptions {
  /// Pre-pass before ddmin: segment the failing schedule into whole
  /// operations (via the recorder's completion flags), greedily drop
  /// completed operations whose removal keeps the failure, and re-derive
  /// the schedule. Off by default so existing witnesses are unchanged.
  bool drop_operations = false;
};

/// SimObserver that records the scheduler's decisions as they execute,
/// plus a parallel flag per step: did this step complete an operation?
/// (The completion flags segment the schedule into whole operations for
/// the minimizer's operation-drop pre-pass.)
class TraceRecorder final : public core::SimObserver {
 public:
  void on_step(std::uint64_t tau, std::size_t process, bool completed) override;

  const std::vector<std::uint32_t>& steps() const noexcept { return steps_; }
  std::vector<std::uint32_t> take_steps() { return std::move(steps_); }
  const std::vector<char>& completed_flags() const noexcept {
    return completed_;
  }
  std::vector<char> take_completed_flags() { return std::move(completed_); }

 private:
  std::vector<std::uint32_t> steps_;
  std::vector<char> completed_;
};

/// Scheduler that plays back a recorded decision sequence.
///
/// Strict mode (replay of a certified trace): any divergence — a scripted
/// pid that is no longer active, or running past the script — throws
/// std::runtime_error. Lenient mode (candidate schedules proposed by the
/// minimizer): inactive entries are skipped and an exhausted script falls
/// back to the lowest active pid, so *any* pid sequence is a valid
/// candidate schedule. Crash notifications are logged either way so
/// replay tests can certify that Scheduler::on_crash fired identically.
class ReplayScheduler final : public core::Scheduler {
 public:
  explicit ReplayScheduler(std::vector<std::uint32_t> steps,
                           bool strict = true);

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override;
  /// theta = 0: a point-mass playback is not a stochastic scheduler.
  double theta(std::size_t num_active) const override {
    (void)num_active;
    return 0.0;
  }
  void on_crash(std::size_t process) override {
    crash_log_.push_back(process);
  }
  std::string name() const override {
    return strict_ ? "replay" : "replay-lenient";
  }

  /// The crash victims this scheduler was told about, in order.
  const std::vector<std::size_t>& crash_log() const noexcept {
    return crash_log_;
  }
  /// Script entries consumed so far (>= steps scheduled in lenient mode,
  /// where inactive entries are skipped).
  std::size_t cursor() const noexcept { return cursor_; }

 private:
  std::vector<std::uint32_t> steps_;
  bool strict_;
  std::size_t cursor_ = 0;
  std::vector<std::size_t> crash_log_;
};

}  // namespace pwf::check
