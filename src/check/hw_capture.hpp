// History capture for the hardware lock-free structures (src/lockfree).
//
// Real threads stamp an invoke ticket immediately before calling into the
// structure and a response ticket immediately after returning, from one
// global atomic counter. The recovered [invoke, response] intervals
// *over-approximate* the true operation intervals (the stamp happens
// strictly outside the call), which is sound: widening intervals only
// adds legal linearization orders, so a NOT-LINEARIZABLE verdict on the
// captured history implies the true history is broken too. The converse
// caveat — a torn capture can mask a real violation — is an accepted
// limitation (see ROADMAP open items).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/lin_check.hpp"

namespace pwf::check {

struct HwCaptureOptions {
  std::size_t threads = 4;
  std::size_t ops_per_thread = 200;
  std::uint64_t seed = 1;
};

struct HwCaptureResult {
  std::string structure;
  History history;
  LinResult lin;
};

/// The capturable hardware structures: treiber-stack, ms-queue,
/// harris-list, hash-set, cas-counter, faa-counter.
const std::vector<std::string>& hw_structures();

/// Runs a mixed-operation burst on `structure` with real threads,
/// capturing the history via atomic tickets, then checks it.
/// Throws std::invalid_argument for an unknown structure name.
HwCaptureResult hw_capture_run(const std::string& structure,
                               const HwCaptureOptions& options,
                               const CheckOptions& check = {});

}  // namespace pwf::check
