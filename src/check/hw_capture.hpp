// History capture for the hardware lock-free structures (src/lockfree).
//
// Real threads stamp tickets from one global atomic counter around each
// structure call; the recovered intervals feed the linearizability
// checker. Two stamping modes (StampMode):
//
//  - kCallBoundary: an invoke ticket immediately before the call and a
//    response ticket immediately after. The interval *over-approximates*
//    the true operation interval, which is sound: widening only adds
//    legal linearization orders, so NOT-LINEARIZABLE on the capture
//    implies the true history is broken. The converse caveat — a wide
//    capture can mask a real violation — is the price.
//
//  - kLinPoint: the structures are additionally instrumented with the
//    TicketStamp policy (lockfree/lin_stamp.hpp), which brackets the
//    linearizing instruction itself: a `pre` ticket before each
//    linearizing attempt (retries overwrite it) and a `post` ticket once
//    the attempt is known to have taken effect. The [pre, post] bracket
//    provably contains the true linearization point and is nested inside
//    the call boundary, so it is sound in the same widening sense while
//    being far tighter — less slack for a masked reordering to hide in.
//    A NOT-LINEARIZABLE verdict in this mode indicts either the structure
//    or the stamp annotations; for the stock structures the annotations
//    sit exactly at the linearization points argued in DESIGN.md, so the
//    mode doubles as a calibration check on those arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/lin_check.hpp"
#include "mem/reclaimer.hpp"
#include "util/tsc.hpp"

namespace pwf::check {

/// How operation intervals are recovered from the hardware run.
enum class StampMode {
  kCallBoundary,  ///< tickets just outside the structure call (widest, sound)
  kLinPoint,      ///< tickets bracketing the linearizing instruction (tight)
};

const char* stamp_mode_name(StampMode mode);
std::optional<StampMode> parse_stamp_mode(const std::string& name);

/// Which clock the stamps are drawn from.
///
///  - kTicket: the original process-global atomic ticket counter. Every
///    stamp is a fetch_add on one shared cache line — a total order for
///    free, but the capture itself serializes under contention (the very
///    effect the paper measures). Stays the golden reference.
///
///  - kTsc: per-thread invariant-TSC reads (util/tsc) — zero shared
///    writes in the timed region. Raw per-thread stamps are made
///    comparable by one calibration per session (skew bound ε); every
///    recovered interval is widened by ε and the widened endpoints are
///    rank-compressed into dense ticket-like indices with the
///    deterministic (stamp, tid, seq) tie-break. Widening only adds
///    legal linearization orders, so verdicts stay sound (DESIGN.md
///    §6a); ticket-vs-tsc verdict equivalence is enforced by tests.
enum class ClockMode {
  kTicket,  ///< global atomic ticket (serializing, exact total order)
  kTsc,     ///< calibrated per-thread TSC (contention-free, ε-widened)
};

const char* clock_mode_name(ClockMode mode);
std::optional<ClockMode> parse_clock_mode(const std::string& name);

/// Options for one hardware capture session.
struct HwOptions {
  std::size_t threads = 4;
  std::size_t ops_per_thread = 2000;
  /// Independent capture rounds (fresh structure instance each); the
  /// verdict is the first violating round, or the last round when all
  /// pass. Slack statistics aggregate across rounds.
  std::size_t bursts = 1;
  std::uint64_t seed = 1;
  StampMode stamp = StampMode::kCallBoundary;
  ClockMode clock = ClockMode::kTicket;
  /// Pin capture thread t to allowed CPU t (util::pin_this_thread), so
  /// each thread samples one TSC domain for the whole burst. Calibration
  /// pins its probes the same way. Best effort: capture proceeds
  /// unpinned where pinning is unsupported.
  bool pin_threads = false;
  /// When false, capture and record but skip the linearizability checker
  /// (and witness minimization); HwResult::lin stays kUnknown. The
  /// capture_overhead experiment uses this to time stamping cost without
  /// paying for checking.
  bool check_history = true;
  /// Reclamation policy the captured structures run under (mem/reclaimer):
  /// linearizability must hold under every policy, so the checker runs
  /// the same workloads over epoch, hazard-era, and pool reclamation.
  /// Structures without a reclamation domain (plain atomic counters, the
  /// untagged mutant) ignore it.
  mem::ReclaimPolicy reclaim = mem::ReclaimPolicy::kEpoch;
  /// When > 0, every jitter_period-th operation of each thread yields
  /// between the boundary stamps and the structure call (both sides).
  /// This widens call-boundary intervals without delaying the call
  /// itself — on a single-core host it is what makes the boundary-vs-
  /// lin-point slack comparison visible at all (without forced
  /// preemption, almost every interval is tight in both modes).
  std::size_t jitter_period = 0;
  /// Minimize the violating history before reporting it as a witness
  /// (unique-value stack/queue workloads only; see HwResult::witness).
  bool minimize_witness = true;
  /// Probe budget for witness minimization (each probe is one checker
  /// run on a candidate subhistory).
  std::size_t minimize_max_probes = 64;
};

/// A capturable hardware structure.
struct HwStructure {
  std::string name;       ///< registry key, e.g. "treiber-stack"
  std::string spec_kind;  ///< sequential spec for the checker ("stack", ...)
  bool expect_linearizable = true;  ///< false for compiled-in mutants
  std::string note;       ///< one-line description for --list / reports
};

/// Result of HwSession::run().
struct HwResult {
  static constexpr std::uint64_t kPendingSlack =
      std::numeric_limits<std::uint64_t>::max();

  std::string structure;
  StampMode stamp = StampMode::kCallBoundary;
  ClockMode clock = ClockMode::kTicket;
  mem::ReclaimPolicy reclaim = mem::ReclaimPolicy::kEpoch;
  /// Cross-thread skew calibration (kTsc only; default-constructed in
  /// ticket mode). calibration.epsilon is the widening every interval
  /// received before rank compression.
  util::TscCalibration calibration;
  History history;  ///< the checked round (first violating, else last)
  LinResult lin;

  /// Per-operation slack of the *effective* intervals the checker saw
  /// (lin-point brackets in kLinPoint mode): foreign tickets strictly
  /// inside the interval (length − 1). Aggregated across bursts. Slack 0
  /// means nothing else happened inside the interval, so it cannot be
  /// masking a reordering. Note that in kLinPoint mode an operation's own
  /// boundary tickets land inside *other* operations' intervals, so
  /// cross-mode comparisons should use medians, not sums.
  std::vector<std::uint64_t> interval_slack;
  /// Per-operation call-boundary slack (recorded in both modes).
  std::vector<std::uint64_t> boundary_slack;

  std::uint64_t max_slack = 0;       ///< over interval_slack
  double mean_slack = 0.0;
  double median_slack = 0.0;
  std::uint64_t boundary_max_slack = 0;
  double boundary_mean_slack = 0.0;
  double boundary_median_slack = 0.0;

  /// Operations whose lin-point bracket was complete (kLinPoint mode);
  /// the remainder fell back to their boundary interval.
  std::size_t stamped_ops = 0;
  std::size_t total_ops = 0;  ///< across all bursts

  double capture_ms = 0.0;  ///< wall time in thread spawn..join
  double check_ms = 0.0;    ///< wall time in the checker (+ minimization)

  bool expect_linearizable = true;  ///< from the registry entry
  /// Minimized violating history (only when NOT-LINEARIZABLE and the
  /// workload supports sound minimization); checker-verified to still be
  /// a violation. Empty otherwise.
  History witness;
  bool witness_minimized = false;

  /// Verdict matches the registry expectation (mutants are *expected* to
  /// fail; a mutant that slips past the checker is a capture bug).
  bool as_expected() const noexcept;
};

/// One hardware capture: a structure, options, and a cached result.
///
/// Replaces the old hw_capture_run() free function. Typical use:
///
///   HwSession session("treiber-stack", {.stamp = StampMode::kLinPoint});
///   const HwResult& r = session.run();
///
class HwSession {
 public:
  /// The capturable structures. Stock entries are always present; the
  /// deliberately broken ones (expect_linearizable = false) appear only
  /// when built with -DPWF_HW_MUTANTS=ON.
  static const std::vector<HwStructure>& registry();

  /// Registry lookup; throws std::invalid_argument for unknown names.
  static const HwStructure& find(const std::string& name);

  explicit HwSession(const std::string& structure, HwOptions options = {},
                     CheckOptions check = {});

  /// Captures and checks; the result is cached (subsequent calls return
  /// the same result without re-running). On a temporary session the
  /// result is returned by value instead — `const HwResult& r =
  /// HwSession(...).run();` lifetime-extends the result rather than
  /// dangling into a destroyed session.
  const HwResult& run() &;
  HwResult run() &&;

  /// The cached result; throws std::logic_error before run(). By value
  /// on a temporary session, for the same reason as run().
  const HwResult& result() const&;
  HwResult result() &&;

  const HwStructure& structure() const noexcept { return structure_; }
  const HwOptions& options() const noexcept { return options_; }

 private:
  HwStructure structure_;
  HwOptions options_;
  CheckOptions check_;
  std::optional<HwResult> result_;
};

/// Runs one burst of the structure's capture workload with stamping
/// compiled out entirely (no clock reads, no records, no allocation) and
/// returns its wall time in ms — the uninstrumented baseline the
/// capture_overhead experiment subtracts from instrumented runs. Spawn
/// and join are included, matching how HwResult::capture_ms is measured.
double hw_uninstrumented_burst_ms(const std::string& structure,
                                  const HwOptions& options,
                                  std::uint64_t seed);

// ---------------------------------------------------------------------------
// Witness minimization (public surface; HwSession::run uses it internally).

/// Whether minimize_witness has a sound drop discipline for this spec
/// kind: stack/queue (matched push/pop pairs), set and multi-counter
/// (whole-key groups), counter (down-closed return thresholds).
bool minimizable_spec(const std::string& spec_kind);

/// Shrinks a known-failing history to a smaller one that the checker
/// still rejects. `failing` must be NotLinearizable under
/// make_spec(spec_kind) or the result is meaningless. Each candidate is
/// re-verified with a budget-clamped probe (at most `max_probes` checker
/// calls); unverified candidates are never adopted, so the returned
/// history is itself checker-verified failing. `*minimized` reports
/// whether the witness is strictly smaller than the input. For a
/// non-minimizable spec kind the input is returned unchanged.
History minimize_witness(const History& failing, const std::string& spec_kind,
                         const CheckOptions& check, std::size_t max_probes,
                         bool* minimized);

// ---------------------------------------------------------------------------
// Deprecated pre-HwSession surface (thin wrappers; migrate to HwSession).

struct HwCaptureOptions {
  std::size_t threads = 4;
  std::size_t ops_per_thread = 200;
  std::uint64_t seed = 1;
};

struct HwCaptureResult {
  std::string structure;
  History history;
  LinResult lin;
  std::vector<std::uint64_t> interval_slack;
  std::uint64_t max_slack = 0;
  double mean_slack = 0.0;

  static constexpr std::uint64_t kPendingSlack = HwResult::kPendingSlack;
};

/// Stock structure names (no mutants), for compatibility.
const std::vector<std::string>& hw_structures();

[[deprecated("use HwSession")]]
HwCaptureResult hw_capture_run(const std::string& structure,
                               const HwCaptureOptions& options,
                               const CheckOptions& check = {});

}  // namespace pwf::check
