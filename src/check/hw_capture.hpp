// History capture for the hardware lock-free structures (src/lockfree).
//
// Real threads stamp an invoke ticket immediately before calling into the
// structure and a response ticket immediately after returning, from one
// global atomic counter. The recovered [invoke, response] intervals
// *over-approximate* the true operation intervals (the stamp happens
// strictly outside the call), which is sound: widening intervals only
// adds legal linearization orders, so a NOT-LINEARIZABLE verdict on the
// captured history implies the true history is broken too. The converse
// caveat — a torn capture can mask a real violation — is an accepted
// limitation (see ROADMAP open items).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/lin_check.hpp"

namespace pwf::check {

struct HwCaptureOptions {
  std::size_t threads = 4;
  std::size_t ops_per_thread = 200;
  std::uint64_t seed = 1;
};

struct HwCaptureResult {
  std::string structure;
  History history;
  LinResult lin;
  /// Per-operation interval slack, in invoke order: foreign tickets
  /// stamped strictly inside the operation's [invoke, response] interval
  /// (response − invoke − 1). Slack 0 means the captured interval is
  /// tight — nothing else happened between the stamps, so the interval
  /// cannot be masking a reordering. Large slack flags operations whose
  /// "linearizable" verdict may rest on capture widening rather than on
  /// the structure (pending operations report kPendingSlack).
  std::vector<std::uint64_t> interval_slack;
  std::uint64_t max_slack = 0;   ///< over completed operations
  double mean_slack = 0.0;       ///< over completed operations

  static constexpr std::uint64_t kPendingSlack =
      std::numeric_limits<std::uint64_t>::max();
};

/// The capturable hardware structures: treiber-stack, ms-queue,
/// harris-list, hash-set, cas-counter, faa-counter.
const std::vector<std::string>& hw_structures();

/// Runs a mixed-operation burst on `structure` with real threads,
/// capturing the history via atomic tickets, then checks it.
/// Throws std::invalid_argument for an unknown structure name.
HwCaptureResult hw_capture_run(const std::string& structure,
                               const HwCaptureOptions& options,
                               const CheckOptions& check = {});

}  // namespace pwf::check
