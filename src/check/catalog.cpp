#include "check/catalog.hpp"

#include <stdexcept>
#include <utility>

#include "check/mutants.hpp"
#include "core/algorithms.hpp"
#include "core/sim_queue.hpp"
#include "core/sim_rcu.hpp"
#include "core/sim_skiplist.hpp"
#include "core/sim_stack.hpp"
#include "waitfree/sim_object.hpp"

namespace pwf::check {

namespace {

using core::Simulation;
using lockfree::SyncStrategy;

/// Wraps a machine factory so every machine gets the trace sink attached
/// at construction.
core::StepMachineFactory traced(core::StepMachineFactory inner,
                                core::OpTraceSink* sink) {
  return [inner = std::move(inner), sink](std::size_t pid, std::size_t n) {
    auto machine = inner(pid, n);
    machine->set_trace(sink);
    return machine;
  };
}

/// Sim-twin builder for one cell of the skip-list strategy matrix. A
/// small key space keeps every schedule on a few hot keys, which is what
/// gives short exploration runs their discriminating power.
WorkloadBuildFn skiplist_build(core::SimSkipListConfig config) {
  return [config](std::size_t n, std::uint64_t seed,
                  std::unique_ptr<core::Scheduler> sched,
                  core::OpTraceSink* sink) {
    Simulation::Options opt;
    opt.num_registers = core::SimSkipList::registers_required(n, config);
    opt.seed = seed;
    return std::make_unique<Simulation>(
        n, traced(core::SimSkipList::factory(config), sink),
        std::move(sched), opt);
  };
}

core::SimSkipListConfig skiplist_config(SyncStrategy strategy,
                                        bool novalidate = false) {
  core::SimSkipListConfig config;
  config.strategy = strategy;
  config.key_space = 3;
  config.novalidate = novalidate;
  return config;
}

std::vector<CatalogEntry> make_catalog() {
  std::vector<CatalogEntry> out;

  // --- stock structures ----------------------------------------------------
  // Catalog order is chosen so both projections reproduce their legacy
  // registry order exactly: the sim subsequence is the historical
  // workloads() order, the hw subsequence the historical
  // HwSession::registry() order.
  out.push_back(CatalogEntry{
      "treiber-stack", "stack", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "sim-stack", 3, 240,
          "Treiber stack (tagged head), alternating push/pop",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            constexpr std::size_t kSlots = 2;
            Simulation::Options opt;
            opt.num_registers = core::SimStack::registers_required(n, kSlots);
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(core::SimStack::factory(kSlots), sink),
                std::move(sched), opt);
          }},
      CatalogEntry::HwTwin{"treiber-stack",
                           "Treiber stack, EBR reclamation"}});

  out.push_back(CatalogEntry{
      "ms-queue", "queue", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "sim-queue", 3, 240,
          "Michael-Scott queue (generation-stamped), alternating enq/deq",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            constexpr std::size_t kSlots = 2;
            Simulation::Options opt;
            opt.num_registers = core::SimQueue::registers_required(n, kSlots);
            opt.seed = seed;
            opt.initial_values = core::SimQueue::initial_values();
            return std::make_unique<Simulation>(
                n, traced(core::SimQueue::factory(kSlots), sink),
                std::move(sched), opt);
          }},
      CatalogEntry::HwTwin{"ms-queue", "Michael-Scott FIFO queue"}});

  out.push_back(CatalogEntry{
      "rcu", "rcu", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "sim-rcu", 3, 240,
          "RCU version register, 1 writer + readers, deep recycling pool",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            core::RcuConfig cfg;
            cfg.writers = 1;
            cfg.payload_len = 2;
            // Deep pool: within a bounded schedule no reader can straddle
            // enough updates to see a recycled block, so reads never tear.
            cfg.slots_per_writer = 64;
            Simulation::Options opt;
            opt.num_registers = core::SimRcu::registers_required(cfg);
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(core::SimRcu::factory(cfg), sink),
                std::move(sched), opt);
          }},
      std::nullopt});

  out.push_back(CatalogEntry{
      "harris-list", "set", true, false, std::nullopt, std::nullopt,
      CatalogEntry::HwTwin{"harris-list", "Harris ordered-list set"}});

  out.push_back(CatalogEntry{
      "hash-set", "set", true, false, std::nullopt, std::nullopt,
      CatalogEntry::HwTwin{"hash-set",
                           "hash set over Harris-list buckets"}});

  out.push_back(CatalogEntry{
      "cas-counter", "counter", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "fai-counter", 3, 200,
          "Algorithm 5 fetch-and-increment on augmented CAS",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            Simulation::Options opt;
            opt.num_registers =
                core::FetchAndIncrement::registers_required();
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(core::FetchAndIncrement::factory(), sink),
                std::move(sched), opt);
          }},
      CatalogEntry::HwTwin{"cas-counter",
                           "CAS-loop fetch-and-inc (Alg. 5)"}});

  out.push_back(CatalogEntry{
      "faa-counter", "counter", true, false, std::nullopt, std::nullopt,
      CatalogEntry::HwTwin{"faa-counter", "wait-free fetch_add baseline"}});

  out.push_back(CatalogEntry{
      "scu-counter", "counter", true, false, std::nullopt, std::nullopt,
      CatalogEntry::HwTwin{"scu-counter",
                           "counter via the universal SCU object"}});

  out.push_back(CatalogEntry{
      "sharded-counter", "multi-counter", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "sharded-counter", 4, 400,
          "register file of independent fetch-inc counters (multi-object)",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            constexpr std::size_t kCounters = 8;
            Simulation::Options opt;
            opt.num_registers =
                core::ShardedCounter::registers_required(kCounters);
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(core::ShardedCounter::factory(kCounters), sink),
                std::move(sched), opt);
          }},
      std::nullopt});

  // --- seeded mutants ------------------------------------------------------
  out.push_back(CatalogEntry{
      "racy-counter", "counter", false, true, std::nullopt,
      CatalogEntry::SimTwin{
          "mut-racy-counter", 3, 64,
          "MUTANT: increment as read + blind write (lost updates)",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            Simulation::Options opt;
            opt.num_registers = RacyCounter::registers_required();
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(RacyCounter::factory(), sink), std::move(sched),
                opt);
          }},
      std::nullopt});

  out.push_back(CatalogEntry{
      "aba-stack", "stack", false, true, std::nullopt,
      CatalogEntry::SimTwin{
          "mut-aba-stack", 3, 240,
          "MUTANT: Treiber stack with untagged head CAS (ABA)",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            constexpr std::size_t kSlots = 1;  // tight pool: reuse is fast
            Simulation::Options opt;
            opt.num_registers =
                AbaSimStack::registers_required(n, kSlots);
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(AbaSimStack::factory(kSlots), sink),
                std::move(sched), opt);
          }},
      std::nullopt});

  out.push_back(CatalogEntry{
      "nohelp-queue", "queue", false, true, std::nullopt,
      CatalogEntry::SimTwin{
          "mut-nohelp-queue", 3, 240,
          "MUTANT: MS queue whose dequeue never helps the lagging tail",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            constexpr std::size_t kSlots = 1;
            Simulation::Options opt;
            opt.num_registers =
                NoHelpSimQueue::registers_required(n, kSlots);
            opt.seed = seed;
            opt.initial_values = NoHelpSimQueue::initial_values();
            return std::make_unique<Simulation>(
                n, traced(NoHelpSimQueue::factory(kSlots), sink),
                std::move(sched), opt);
          }},
      std::nullopt});

  out.push_back(CatalogEntry{
      "torn-rcu", "rcu", false, true, std::nullopt,
      CatalogEntry::SimTwin{
          "mut-torn-rcu", 3, 240,
          "MUTANT: RCU with a single-slot pool (no grace period; torn "
          "reads)",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            core::RcuConfig cfg;
            cfg.writers = 1;
            cfg.payload_len = 3;
            cfg.slots_per_writer = 1;  // writer reuses the block at once
            Simulation::Options opt;
            opt.num_registers = core::SimRcu::registers_required(cfg);
            opt.seed = seed;
            return std::make_unique<Simulation>(
                n, traced(core::SimRcu::factory(cfg), sink),
                std::move(sched), opt);
          }},
      std::nullopt});

  // --- wait-free universal construction (src/waitfree) ---------------------
  out.push_back(CatalogEntry{
      "wf-counter", "counter", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "wf-counter", 3, 400,
          "wait-free universal construction, fetch-inc (src/waitfree)",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            waitfree::SimWfConfig cfg;
            cfg.kind = waitfree::SimWfKind::kCounter;
            // Aggressive knobs: announce after 2 losses, probe every
            // other op, so short exploration schedules exercise the slow
            // path too.
            cfg.max_failures = 2;
            cfg.help_delay = 2;
            Simulation::Options opt;
            opt.num_registers =
                waitfree::WaitFreeSim::registers_required(n, cfg);
            opt.seed = seed;
            opt.initial_values =
                waitfree::WaitFreeSim::initial_values(n, cfg);
            return std::make_unique<Simulation>(
                n, traced(waitfree::WaitFreeSim::factory(cfg), sink),
                std::move(sched), opt);
          }},
      CatalogEntry::HwTwin{
          "wf-counter",
          "counter via the wait-free helping wrapper (src/waitfree)"}});

  out.push_back(CatalogEntry{
      "wf-stack", "stack", true, false, std::nullopt,
      CatalogEntry::SimTwin{
          "wf-stack", 3, 400,
          "wait-free universal construction, alternating push/pop",
          [](std::size_t n, std::uint64_t seed,
             std::unique_ptr<core::Scheduler> sched,
             core::OpTraceSink* sink) {
            waitfree::SimWfConfig cfg;
            cfg.kind = waitfree::SimWfKind::kStack;
            cfg.max_failures = 2;
            cfg.help_delay = 2;
            Simulation::Options opt;
            opt.num_registers =
                waitfree::WaitFreeSim::registers_required(n, cfg);
            opt.seed = seed;
            opt.initial_values =
                waitfree::WaitFreeSim::initial_values(n, cfg);
            return std::make_unique<Simulation>(
                n, traced(waitfree::WaitFreeSim::factory(cfg), sink),
                std::move(sched), opt);
          }},
      CatalogEntry::HwTwin{
          "wf-stack",
          "bounded stack via the wait-free helping wrapper "
          "(src/waitfree)"}});

  out.push_back(CatalogEntry{
      "treiber-stack-untagged", "stack", false, true, std::nullopt,
      std::nullopt,
      CatalogEntry::HwTwin{
          "treiber-stack-untagged",
          "ABA mutant: untagged head CAS + eager node reuse",
          /*mutants_only=*/true}});

  // --- skip-list strategy matrix (lockfree/skiplist.hpp) -------------------
  // One row per synchronization strategy over the same abstract sorted
  // set; the sim twins share the step-machine (core/sim_skiplist.hpp),
  // the hw twins the native three-variant family. Appended last: the
  // projections' legacy indices must not move.
  out.push_back(CatalogEntry{
      "skiplist-coarse", "set", true, false, SyncStrategy::kCoarse,
      CatalogEntry::SimTwin{
          "sim-skiplist-coarse", 3, 300,
          "two-level skip list, one global lock register",
          skiplist_build(skiplist_config(SyncStrategy::kCoarse))},
      CatalogEntry::HwTwin{"skiplist-coarse",
                           "skip-list map, single-mutex strategy"}});

  out.push_back(CatalogEntry{
      "skiplist-optimistic", "set", true, false, SyncStrategy::kOptimistic,
      CatalogEntry::SimTwin{
          "sim-skiplist-optimistic", 3, 300,
          "two-level skip list, lazy locks + post-lock validation",
          skiplist_build(skiplist_config(SyncStrategy::kOptimistic))},
      CatalogEntry::HwTwin{"skiplist-optimistic",
                           "skip-list map, lazy fine-grained locking"}});

  out.push_back(CatalogEntry{
      "skiplist-lockfree", "set", true, false, SyncStrategy::kLockFree,
      CatalogEntry::SimTwin{
          "sim-skiplist-lockfree", 3, 300,
          "two-level skip list, marked-pointer CAS + helping",
          skiplist_build(skiplist_config(SyncStrategy::kLockFree))},
      CatalogEntry::HwTwin{"skiplist-lockfree",
                           "skip-list map, marked-pointer CAS (Fraser)"}});

  out.push_back(CatalogEntry{
      "skiplist-novalidate", "set", false, true, SyncStrategy::kOptimistic,
      CatalogEntry::SimTwin{
          "mut-novalidate-skiplist", 3, 300,
          "MUTANT: optimistic skip list without post-lock validation "
          "(lost updates)",
          skiplist_build(
              skiplist_config(SyncStrategy::kOptimistic, true))},
      CatalogEntry::HwTwin{
          "skiplist-novalidate",
          "MUTANT: optimistic skip list, validation skipped",
          /*mutants_only=*/true}});

  return out;
}

}  // namespace

const std::vector<CatalogEntry>& structure_catalog() {
  static const std::vector<CatalogEntry> kCatalog = make_catalog();
  return kCatalog;
}

const CatalogEntry& find_catalog_entry(const std::string& name) {
  for (const CatalogEntry& e : structure_catalog()) {
    if (e.name == name || (e.sim && e.sim->workload == name) ||
        (e.hw && e.hw->structure == name)) {
      return e;
    }
  }
  throw std::invalid_argument("find_catalog_entry: unknown structure '" +
                              name + "'");
}

std::vector<const CatalogEntry*> catalog_column(
    std::optional<lockfree::SyncStrategy> strategy) {
  std::vector<const CatalogEntry*> out;
  for (const CatalogEntry& e : structure_catalog()) {
    if (!strategy || e.strategy == strategy) out.push_back(&e);
  }
  return out;
}

}  // namespace pwf::check
