#include "check/history.hpp"

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pwf::check {

const char* op_name(OpCode op) {
  switch (op) {
    case OpCode::kPush: return "push";
    case OpCode::kPop: return "pop";
    case OpCode::kEnqueue: return "enq";
    case OpCode::kDequeue: return "deq";
    case OpCode::kInsert: return "insert";
    case OpCode::kErase: return "erase";
    case OpCode::kContains: return "contains";
    case OpCode::kFetchInc: return "fetch_inc";
    case OpCode::kRcuUpdate: return "rcu_update";
    case OpCode::kRcuRead: return "rcu_read";
  }
  return "?";
}

std::string Operation::render() const {
  std::ostringstream os;
  os << "t" << thread << ": " << op_name(op) << "(";
  if (has_arg) os << arg;
  os << ")";
  if (!completed()) {
    os << " -> *pending*";
  } else if (has_ret) {
    os << " -> " << (ret == core::kTornRead ? std::string("TORN")
                                            : std::to_string(ret));
  } else {
    os << " -> empty";
  }
  return os.str();
}

History History::from_events(std::vector<OpEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const OpEvent& a, const OpEvent& b) { return a.seq < b.seq; });
  std::vector<Operation> ops;
  ops.reserve(events.size() / 2);
  // Per-thread index of the pending operation in `ops`.
  std::vector<std::optional<std::size_t>> pending;
  for (std::uint64_t index = 0; index < events.size(); ++index) {
    const OpEvent& e = events[index];
    if (e.thread >= pending.size()) pending.resize(e.thread + 1);
    if (e.is_invoke) {
      if (pending[e.thread]) {
        throw std::invalid_argument(
            "History: thread invoked while an operation was pending");
      }
      Operation op;
      op.thread = e.thread;
      op.op = e.op;
      op.has_arg = e.has_value;
      op.arg = e.value;
      op.invoke = index;
      pending[e.thread] = ops.size();
      ops.push_back(op);
    } else {
      if (!pending[e.thread]) {
        throw std::invalid_argument(
            "History: response without a pending invoke");
      }
      Operation& op = ops[*pending[e.thread]];
      if (op.op != e.op) {
        throw std::invalid_argument(
            "History: response op does not match pending invoke");
      }
      op.has_ret = e.has_value;
      op.ret = e.value;
      op.response = index;
      pending[e.thread].reset();
    }
  }
  // `ops` is already sorted by invoke index (we appended in event order).
  return History(std::move(ops));
}

std::size_t History::num_completed() const noexcept {
  std::size_t completed = 0;
  for (const Operation& op : ops_) completed += op.completed() ? 1 : 0;
  return completed;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t History::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  fnv(h, ops_.size());
  for (const Operation& op : ops_) {
    fnv(h, op.thread);
    fnv(h, static_cast<std::uint64_t>(op.op));
    fnv(h, op.has_arg ? op.arg + 1 : 0);
    fnv(h, op.completed() ? (op.has_ret ? op.ret + 2 : 1) : 0);
    fnv(h, op.invoke);
    fnv(h, op.response);
  }
  return h;
}

void History::render(std::ostream& os) const {
  for (const Operation& op : ops_) {
    os << "  [" << op.invoke << ", "
       << (op.completed() ? std::to_string(op.response) : std::string("-"))
       << "] " << op.render() << "\n";
  }
}

std::string History::render() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

void SimTraceRecorder::log(std::uint32_t thread, bool is_invoke, OpCode op,
                           bool has_value, Value value) {
  if (max_events_ && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  OpEvent e;
  e.seq = events_.size();
  e.thread = thread;
  e.is_invoke = is_invoke;
  e.op = op;
  e.has_value = has_value;
  e.value = value;
  events_.push_back(e);
}

void SimTraceRecorder::on_invoke(std::size_t thread, OpCode op, bool has_arg,
                                 Value arg) {
  log(static_cast<std::uint32_t>(thread), /*is_invoke=*/true, op, has_arg, arg);
}

void SimTraceRecorder::on_response(std::size_t thread, OpCode op,
                                   bool has_value, Value value) {
  log(static_cast<std::uint32_t>(thread), /*is_invoke=*/false, op, has_value,
      value);
}

}  // namespace pwf::check
