// Operation histories for linearizability checking.
//
// A history is the classic Herlihy & Wing object: a sequence of invoke
// and response events, one pending operation per thread at most. We store
// it as a vector of Operation records whose invoke/response fields are
// *event indices* in the global event order — in the sequential
// simulation that order is the execution order itself; on hardware it is
// recovered from an atomic ticket stamped around each call (see
// hw_capture.hpp). Two operations overlap iff their [invoke, response]
// intervals intersect; a pending operation (crashed, or still running at
// capture end) has response = kPending and overlaps everything after its
// invoke.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "core/op_trace.hpp"

namespace pwf::check {

using core::OpCode;
using core::Value;

/// Human-readable operation name ("push", "deq", ...).
const char* op_name(OpCode op);

/// One raw trace event, stamped with its global order index.
struct OpEvent {
  std::uint64_t seq = 0;  ///< global order (event index / hardware ticket)
  std::uint32_t thread = 0;
  bool is_invoke = false;
  OpCode op = OpCode::kPush;
  bool has_value = false;  ///< invoke: has an argument; response: has a return
  Value value = 0;         ///< the argument / return value
};

/// One method invocation, possibly pending.
struct Operation {
  static constexpr std::uint64_t kPending =
      std::numeric_limits<std::uint64_t>::max();

  std::uint32_t thread = 0;
  OpCode op = OpCode::kPush;
  bool has_arg = false;
  Value arg = 0;
  bool has_ret = false;  ///< meaningful only when completed
  Value ret = 0;
  std::uint64_t invoke = 0;
  std::uint64_t response = kPending;

  bool completed() const noexcept { return response != kPending; }
  /// Renders "t2: pop() -> 17" style lines for witnesses and logs.
  std::string render() const;
};

/// A complete capture: operations sorted by invoke index.
class History {
 public:
  History() = default;
  explicit History(std::vector<Operation> ops) : ops_(std::move(ops)) {}

  /// Pairs up a raw event stream (any order; sorted by seq internally).
  /// Throws std::invalid_argument on malformed streams (a response with
  /// no matching invoke, or two pending invokes on one thread).
  static History from_events(std::vector<OpEvent> events);

  const std::vector<Operation>& operations() const noexcept { return ops_; }
  std::size_t size() const noexcept { return ops_.size(); }
  std::size_t num_completed() const noexcept;
  std::size_t num_pending() const noexcept {
    return ops_.size() - num_completed();
  }
  /// Total invoke + response events (completed ops contribute 2, pending
  /// ops 1) — the witness-size measure of the acceptance criteria.
  std::size_t num_events() const noexcept {
    return ops_.size() + num_completed();
  }

  /// FNV-1a over the canonical encoding of every operation; bit-identical
  /// histories (and only those) agree. Used to certify replays.
  std::uint64_t fingerprint() const noexcept;

  /// One operation per line, in invoke order.
  void render(std::ostream& os) const;
  std::string render() const;

 private:
  std::vector<Operation> ops_;
};

/// In-memory trace sink for simulated runs: events are stamped with their
/// arrival order (the simulation is sequential, so that *is* the real-time
/// order). `max_events` bounds capture (0 = unbounded); overflow events
/// are dropped and counted, and a capture that overflowed must not be
/// checked (the history would be truncated mid-op).
class SimTraceRecorder final : public core::OpTraceSink {
 public:
  explicit SimTraceRecorder(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void on_invoke(std::size_t thread, OpCode op, bool has_arg,
                 Value arg) override;
  void on_response(std::size_t thread, OpCode op, bool has_value,
                   Value value) override;

  const std::vector<OpEvent>& events() const noexcept { return events_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  History history() const { return History::from_events(events_); }

 private:
  void log(std::uint32_t thread, bool is_invoke, OpCode op, bool has_value,
           Value value);

  std::vector<OpEvent> events_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace pwf::check
