// Pluggable sequential specifications for the linearizability checker.
//
// A Spec is the abstract object's sequential semantics: an initial state
// plus a transition relation apply(state, operation). The checker owns
// the search; a spec only answers "is this operation, with this recorded
// return value, legal in this state — and what is the state afterwards?".
// For *pending* operations (crashed or cut off mid-flight) the recorded
// return does not exist, so apply() accepts any sequential result — a
// pending operation may have taken effect with any outcome, or (handled
// by the checker) never taken effect at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "check/history.hpp"

namespace pwf::check {

/// A cloneable, canonically-serializable sequential state. digest() is
/// the exact memoization key: two states digest equally iff they are the
/// same abstract value (no hashing, no collisions).
class SpecState {
 public:
  virtual ~SpecState() = default;
  virtual std::unique_ptr<SpecState> clone() const = 0;
  virtual void digest(std::string& out) const = 0;
};

/// The sequential semantics of one abstract object.
class Spec {
 public:
  virtual ~Spec() = default;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<SpecState> initial() const = 0;

  /// Applies `op` to `state` in place. Returns false (state then
  /// unspecified) when the operation is illegal here — for completed
  /// operations that includes a recorded return value that the sequential
  /// object would not produce; pending operations match any result.
  virtual bool apply(SpecState& state, const Operation& op) const = 0;

  /// The id of the independent abstract object `op` acts on. Herlihy &
  /// Wing compositionality lets the checker verify each object's
  /// sub-history separately (search cost is exponential in *per-object*
  /// concurrency), so every spec knows its own key extraction and
  /// partitioned checking needs no caller-supplied lambda. Single-object
  /// specs return 0 for everything.
  virtual std::uint64_t object_of(const Operation& op) const {
    (void)op;
    return 0;
  }

  /// True when object_of can yield more than one id — i.e. partitioning
  /// the history is worthwhile. Session's kAuto mode keys off this.
  virtual bool multi_object() const { return false; }
};

/// LIFO stack of unique values: push(v) -> void, pop() -> v | empty.
std::unique_ptr<Spec> make_stack_spec();

/// FIFO queue of unique values: enq(v) -> void, deq() -> v | empty.
std::unique_ptr<Spec> make_queue_spec();

/// Set membership: insert(k) -> 0/1, erase(k) -> 0/1, contains(k) -> 0/1
/// (1 = the operation found/changed something, mirroring the lockfree
/// structures' bool returns).
std::unique_ptr<Spec> make_set_spec();

/// Fetch-and-increment counter: fetch_inc() -> pre-increment value.
std::unique_ptr<Spec> make_counter_spec();

/// RCU version register: rcu_update() -> published version (old + 1),
/// rcu_read() -> current version. The torn-read sentinel never matches.
std::unique_ptr<Spec> make_rcu_spec();

/// A register file of independent fetch-and-increment counters:
/// fetch_inc(k) -> pre-increment value of counter k. The first genuinely
/// multi-object spec (object_of = k), so partitioned checking splits its
/// histories per counter.
std::unique_ptr<Spec> make_multi_counter_spec();

/// The spec for a structure kind name ("stack", "queue", "set",
/// "counter", "multi-counter", "rcu"); throws std::invalid_argument on
/// unknown kinds.
std::unique_ptr<Spec> make_spec(const std::string& kind);

}  // namespace pwf::check
