#include "check/mutants.hpp"

#include <memory>
#include <stdexcept>

namespace pwf::check {

// --- RacyCounter -------------------------------------------------------------

StepMachineFactory RacyCounter::factory() {
  return [](std::size_t pid, std::size_t /*n*/) {
    return std::make_unique<RacyCounter>(pid);
  };
}

bool RacyCounter::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    trace_->on_invoke(pid_, OpCode::kFetchInc, false, 0);
    invoked_ = true;
  }
  if (!writing_) {
    v_ = mem.read(0);
    writing_ = true;
    return false;
  }
  // The bug: blind write instead of CAS — a concurrent increment between
  // our read and this write is silently overwritten.
  mem.write(0, v_ + 1);
  writing_ = false;
  if (trace_) trace_->on_response(pid_, OpCode::kFetchInc, true, v_);
  invoked_ = false;
  return true;
}

// --- AbaSimStack -------------------------------------------------------------

AbaSimStack::AbaSimStack(std::size_t pid, std::size_t n,
                         std::size_t slots_per_process)
    : pid_(pid), n_(n), phase_(Phase::kPushWriteValue) {
  if (pid >= n) throw std::invalid_argument("AbaSimStack: pid >= n");
  if (slots_per_process == 0) {
    throw std::invalid_argument("AbaSimStack: need at least one slot");
  }
  free_slots_.reserve(slots_per_process);
  for (std::size_t s = 0; s < slots_per_process; ++s) {
    free_slots_.push_back(pid * slots_per_process + s + 1);
  }
  begin_op();
}

StepMachineFactory AbaSimStack::factory(std::size_t slots_per_process) {
  return [slots_per_process](std::size_t pid, std::size_t n) {
    return std::make_unique<AbaSimStack>(pid, n, slots_per_process);
  };
}

void AbaSimStack::begin_op() {
  const bool push_turn = op_counter_ % 2 == 0;
  if (push_turn && !free_slots_.empty()) {
    pending_slot_ = free_slots_.back();
    phase_ = Phase::kPushWriteValue;
  } else {
    phase_ = Phase::kPopReadHead;
  }
}

bool AbaSimStack::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    if (phase_ == Phase::kPushWriteValue) {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(pushes_);
      trace_->on_invoke(pid_, OpCode::kPush, true, value);
    } else {
      trace_->on_invoke(pid_, OpCode::kPop, false, 0);
    }
    invoked_ = true;
  }
  switch (phase_) {
    case Phase::kPushWriteValue: {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(pushes_);
      mem.write(value_reg(pending_slot_), value);
      phase_ = Phase::kPushReadHead;
      return false;
    }
    case Phase::kPushReadHead: {
      head_snapshot_ = mem.read(0);
      phase_ = Phase::kPushLinkNode;
      return false;
    }
    case Phase::kPushLinkNode: {
      mem.write(next_reg(pending_slot_), head_snapshot_);
      phase_ = Phase::kPushCas;
      return false;
    }
    case Phase::kPushCas: {
      // The bug: the head carries no tag, so this CAS succeeds whenever
      // the *ref* matches, even if the stack changed underneath.
      if (mem.cas(0, head_snapshot_, pending_slot_)) {
        free_slots_.pop_back();
        ++pushes_;
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPush, false, 0);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kPushReadHead;
      return false;
    }
    case Phase::kPopReadHead: {
      head_snapshot_ = mem.read(0);
      if (head_snapshot_ == 0) {
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPop, false, 0);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kPopReadNext;
      return false;
    }
    case Phase::kPopReadNext: {
      pop_next_ = mem.read(next_reg(head_snapshot_));
      phase_ = Phase::kPopReadValue;
      return false;
    }
    case Phase::kPopReadValue: {
      pop_value_ = mem.read(value_reg(head_snapshot_));
      phase_ = Phase::kPopCas;
      return false;
    }
    case Phase::kPopCas: {
      if (mem.cas(0, head_snapshot_, pop_next_)) {
        free_slots_.push_back(head_snapshot_);
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kPop, true, pop_value_);
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kPopReadHead;
      return false;
    }
  }
  return false;  // unreachable
}

// --- NoHelpSimQueue ----------------------------------------------------------

NoHelpSimQueue::NoHelpSimQueue(std::size_t pid, std::size_t n,
                               std::size_t slots_per_process)
    : pid_(pid), n_(n), phase_(Phase::kEnqWriteValue) {
  if (pid >= n) throw std::invalid_argument("NoHelpSimQueue: pid >= n");
  if (slots_per_process == 0) {
    throw std::invalid_argument("NoHelpSimQueue: need at least one slot");
  }
  pool_.reserve(slots_per_process);
  for (std::size_t s = 0; s < slots_per_process; ++s) {
    pool_.push_back({2 + pid * slots_per_process + s, /*gen=*/0});
  }
  begin_op();
}

std::vector<std::pair<std::size_t, Value>> NoHelpSimQueue::initial_values() {
  return {{0, pack(0, 1)}, {1, pack(0, 1)}};
}

StepMachineFactory NoHelpSimQueue::factory(std::size_t slots_per_process) {
  return [slots_per_process](std::size_t pid, std::size_t n) {
    return std::make_unique<NoHelpSimQueue>(pid, n, slots_per_process);
  };
}

void NoHelpSimQueue::begin_op() {
  // Dequeue-heavy mix (1 enq : 2 deq): with the strict alternation the
  // stock workload uses, every process able to dequeue past the lagging
  // tail is still on its enqueue turn — and the (retained) enqueue-side
  // help closes the race window first. Dequeue pressure keeps processes
  // on dequeue turns long enough for the missing help to bite.
  const bool enqueue_turn = op_counter_ % 3 == 0;
  if (enqueue_turn && !pool_.empty()) {
    my_slot_ = pool_.back().first;
    my_gen_ = pool_.back().second + 1;
    phase_ = Phase::kEnqWriteValue;
  } else {
    phase_ = Phase::kDeqReadHead;
  }
}

bool NoHelpSimQueue::step(SharedMemory& mem) {
  if (trace_ && !invoked_) {
    if (phase_ == Phase::kEnqWriteValue) {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(enqueues_);
      trace_->on_invoke(pid_, OpCode::kEnqueue, true, value);
    } else {
      trace_->on_invoke(pid_, OpCode::kDequeue, false, 0);
    }
    invoked_ = true;
  }
  switch (phase_) {
    case Phase::kEnqWriteValue: {
      const Value value =
          (static_cast<Value>(pid_ + 1) << 32) | static_cast<Value>(enqueues_);
      mem.write(value_reg(my_slot_), value);
      phase_ = Phase::kEnqResetNext;
      return false;
    }
    case Phase::kEnqResetNext: {
      mem.write(next_reg(my_slot_), pack(my_gen_, 0));
      phase_ = Phase::kEnqReadTail;
      return false;
    }
    case Phase::kEnqReadTail: {
      tail_snapshot_ = mem.read(1);
      phase_ = Phase::kEnqReadNext;
      return false;
    }
    case Phase::kEnqReadNext: {
      next_snapshot_ = mem.read(next_reg(lo_of(tail_snapshot_)));
      phase_ = Phase::kEnqRecheckTail;
      return false;
    }
    case Phase::kEnqRecheckTail: {
      const Value tail_now = mem.read(1);
      if (tail_now != tail_snapshot_) {
        tail_snapshot_ = tail_now;
        phase_ = Phase::kEnqReadNext;
        return false;
      }
      phase_ = lo_of(next_snapshot_) != 0 ? Phase::kEnqHelpTail
                                          : Phase::kEnqCasNext;
      return false;
    }
    case Phase::kEnqHelpTail: {
      mem.cas(1, tail_snapshot_,
              pack(hi_of(tail_snapshot_) + 1, lo_of(next_snapshot_)));
      phase_ = Phase::kEnqReadTail;
      return false;
    }
    case Phase::kEnqCasNext: {
      if (mem.cas(next_reg(lo_of(tail_snapshot_)), next_snapshot_,
                  pack(hi_of(next_snapshot_), my_slot_))) {
        phase_ = Phase::kEnqSwingTail;
      } else {
        phase_ = Phase::kEnqReadTail;
      }
      return false;
    }
    case Phase::kEnqSwingTail: {
      mem.cas(1, tail_snapshot_, pack(hi_of(tail_snapshot_) + 1, my_slot_));
      pool_.pop_back();
      ++enqueues_;
      ++op_counter_;
      if (trace_) trace_->on_response(pid_, OpCode::kEnqueue, false, 0);
      invoked_ = false;
      begin_op();
      return true;
    }
    case Phase::kDeqReadHead: {
      head_snapshot_ = mem.read(0);
      phase_ = Phase::kDeqReadNext;
      return false;
    }
    case Phase::kDeqReadNext: {
      next_snapshot_ = mem.read(next_reg(lo_of(head_snapshot_)));
      // The bug: the correct dequeue checks head == tail here and helps
      // the lagging tail forward before touching the node. We barge ahead
      // and dequeue past the tail, after which the tail register points
      // at a slot the popper is free to recycle.
      phase_ = lo_of(next_snapshot_) == 0 ? Phase::kDeqCheckEmpty
                                          : Phase::kDeqReadValue;
      return false;
    }
    case Phase::kDeqCheckEmpty: {
      const Value head_now = mem.read(0);
      if (head_now == head_snapshot_) {
        ++op_counter_;
        if (trace_) trace_->on_response(pid_, OpCode::kDequeue, false, 0);
        invoked_ = false;
        begin_op();
        return true;
      }
      head_snapshot_ = head_now;
      phase_ = Phase::kDeqReadNext;
      return false;
    }
    case Phase::kDeqReadValue: {
      deq_value_ = mem.read(value_reg(lo_of(next_snapshot_)));
      phase_ = Phase::kDeqCasHead;
      return false;
    }
    case Phase::kDeqCasHead: {
      if (mem.cas(0, head_snapshot_,
                  pack(hi_of(head_snapshot_) + 1, lo_of(next_snapshot_)))) {
        pool_.push_back({lo_of(head_snapshot_), hi_of(next_snapshot_)});
        ++op_counter_;
        if (trace_) {
          trace_->on_response(pid_, OpCode::kDequeue, true, deq_value_);
        }
        invoked_ = false;
        begin_op();
        return true;
      }
      phase_ = Phase::kDeqReadHead;
      return false;
    }
  }
  return false;  // unreachable
}

}  // namespace pwf::check
