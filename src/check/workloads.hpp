// The checkable workload registry: every simulated structure the
// exploration driver knows how to run, paired with its sequential spec
// and its expected verdict (stock structures are expected linearizable;
// seeded mutants are expected to be caught).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/spec.hpp"
#include "core/op_trace.hpp"
#include "core/scheduler.hpp"
#include "core/simulation.hpp"

namespace pwf::check {

/// Builds a fresh simulation whose machines emit trace events to `sink`
/// (may be nullptr for an untraced run).
using WorkloadBuildFn = std::function<std::unique_ptr<core::Simulation>(
    std::size_t n, std::uint64_t seed,
    std::unique_ptr<core::Scheduler> scheduler, core::OpTraceSink* sink)>;

/// One checkable workload.
struct Workload {
  std::string name;
  std::string spec_kind;     ///< make_spec key (stack, queue, multi-counter, ...)
  bool expect_linearizable;  ///< stock = true, mutant = false
  std::size_t default_n;     ///< process count the explorer uses by default
  std::uint64_t default_steps;  ///< steps per schedule by default
  std::string note;          ///< one-line description for --list

  WorkloadBuildFn build;

  std::unique_ptr<Spec> make_spec() const { return check::make_spec(spec_kind); }
};

/// All registered workloads, derived from the structure catalog
/// (check/catalog.hpp): every catalog entry with a sim twin, in catalog
/// order. Stock structures come first, then the seeded mutants (names
/// prefixed "mut-"), then later additions in append order.
const std::vector<Workload>& workloads();

/// Looks a workload up by name; throws std::invalid_argument if unknown.
const Workload& find_workload(const std::string& name);

}  // namespace pwf::check
