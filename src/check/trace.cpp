#include "check/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pwf::check {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

constexpr const char* kMagic = "pwf-trace/1";

}  // namespace

std::uint64_t ScheduleTrace::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  fnv(h, n);
  fnv(h, seed);
  fnv(h, steps.size());
  for (std::uint32_t s : steps) fnv(h, s);
  fnv(h, crashes.size());
  for (const CrashEvent& c : crashes) {
    fnv(h, c.tau);
    fnv(h, c.pid);
  }
  return h;
}

void ScheduleTrace::serialize(std::ostream& os) const {
  os << kMagic << "\n";
  if (!workload.empty()) os << "workload " << workload << "\n";
  os << "n " << n << "\n";
  os << "seed " << seed << "\n";
  for (const CrashEvent& c : crashes) {
    os << "crash " << c.tau << " " << c.pid << "\n";
  }
  // Run-length encode the schedule: "pid" or "pid*count", 16 per line.
  os << "sched";
  std::size_t on_line = 0;
  for (std::size_t i = 0; i < steps.size();) {
    std::size_t j = i;
    while (j < steps.size() && steps[j] == steps[i]) ++j;
    const std::size_t run = j - i;
    if (on_line == 16) {
      os << "\nsched";
      on_line = 0;
    }
    os << " " << steps[i];
    if (run > 1) os << "*" << run;
    ++on_line;
    i = j;
  }
  os << "\n";
}

std::string ScheduleTrace::serialize() const {
  std::ostringstream os;
  serialize(os);
  return os.str();
}

ScheduleTrace ScheduleTrace::parse(std::istream& is) {
  ScheduleTrace trace;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::invalid_argument("ScheduleTrace: missing pwf-trace/1 header");
  }
  bool saw_n = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string keyword;
    ls >> keyword;
    if (keyword == "workload") {
      ls >> trace.workload;
    } else if (keyword == "n") {
      if (!(ls >> trace.n) || trace.n == 0) {
        throw std::invalid_argument("ScheduleTrace: bad n line");
      }
      saw_n = true;
    } else if (keyword == "seed") {
      if (!(ls >> trace.seed)) {
        throw std::invalid_argument("ScheduleTrace: bad seed line");
      }
    } else if (keyword == "crash") {
      CrashEvent c;
      if (!(ls >> c.tau >> c.pid)) {
        throw std::invalid_argument("ScheduleTrace: bad crash line");
      }
      trace.crashes.push_back(c);
    } else if (keyword == "sched") {
      std::string token;
      while (ls >> token) {
        const std::size_t star = token.find('*');
        try {
          const std::uint32_t pid =
              static_cast<std::uint32_t>(std::stoul(token.substr(0, star)));
          std::size_t count = 1;
          if (star != std::string::npos) {
            count = std::stoul(token.substr(star + 1));
          }
          if (count == 0) {
            throw std::invalid_argument("zero-length run");
          }
          trace.steps.insert(trace.steps.end(), count, pid);
        } catch (const std::exception&) {
          throw std::invalid_argument("ScheduleTrace: bad sched token '" +
                                      token + "'");
        }
      }
    } else {
      throw std::invalid_argument("ScheduleTrace: unknown keyword '" +
                                  keyword + "'");
    }
  }
  if (!saw_n) throw std::invalid_argument("ScheduleTrace: missing n line");
  for (std::uint32_t s : trace.steps) {
    if (s >= trace.n) {
      throw std::invalid_argument("ScheduleTrace: sched pid out of range");
    }
  }
  for (const CrashEvent& c : trace.crashes) {
    if (c.pid >= trace.n) {
      throw std::invalid_argument("ScheduleTrace: crash pid out of range");
    }
  }
  std::stable_sort(
      trace.crashes.begin(), trace.crashes.end(),
      [](const CrashEvent& a, const CrashEvent& b) { return a.tau < b.tau; });
  return trace;
}

ScheduleTrace ScheduleTrace::parse(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

void TraceRecorder::on_step(std::uint64_t /*tau*/, std::size_t process,
                            bool completed) {
  steps_.push_back(static_cast<std::uint32_t>(process));
  completed_.push_back(completed ? 1 : 0);
}

ReplayScheduler::ReplayScheduler(std::vector<std::uint32_t> steps, bool strict)
    : steps_(std::move(steps)), strict_(strict) {}

std::size_t ReplayScheduler::next(std::uint64_t /*tau*/,
                                  std::span<const std::size_t> active,
                                  Xoshiro256pp& /*rng*/) {
  while (cursor_ < steps_.size()) {
    const std::size_t pid = steps_[cursor_++];
    if (std::binary_search(active.begin(), active.end(), pid)) return pid;
    if (strict_) {
      throw std::runtime_error(
          "ReplayScheduler: scripted process is not active (divergent "
          "replay)");
    }
    // Lenient: the candidate schedule named a crashed process; skip.
  }
  if (strict_) {
    throw std::runtime_error("ReplayScheduler: script exhausted");
  }
  return active.front();
}

}  // namespace pwf::check
