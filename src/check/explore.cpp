#include "check/explore.hpp"

#include "check/session.hpp"

// The pipeline bodies live in Session (check/session.cpp); these free
// functions survive as one-line wrappers for pre-Session call sites.

namespace pwf::check {

std::uint64_t derive_check_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

RunOutcome record_run(const Workload& workload, std::size_t n,
                      std::uint64_t seed, std::uint64_t steps,
                      std::size_t variant,
                      const std::vector<CrashEvent>& crashes,
                      const CheckOptions& check) {
  return Session(workload, check).record(n, seed, steps, variant, crashes);
}

RunOutcome replay_trace(const Workload& workload, const ScheduleTrace& trace,
                        bool strict, const CheckOptions& check) {
  return Session(workload, check).replay(trace, strict);
}

ScheduleTrace minimize_trace(const Workload& workload,
                             const ScheduleTrace& failing,
                             const CheckOptions& check) {
  return Session(workload, check).minimize(failing);
}

ExploreResult explore(const Workload& workload,
                      const ExploreOptions& options) {
  return Session(workload, options.check).explore(options);
}

}  // namespace pwf::check
