#include "check/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "exp/pool.hpp"
#include "util/rng.hpp"

namespace pwf::check {

namespace {

using core::Scheduler;

/// Decorator that records Scheduler::on_crash notifications, so recorded
/// runs expose the same crash log replays do (the crash-under-replay
/// regression tests compare the two).
class CrashLogScheduler final : public Scheduler {
 public:
  explicit CrashLogScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {}

  std::size_t next(std::uint64_t tau, std::span<const std::size_t> active,
                   Xoshiro256pp& rng) override {
    return inner_->next(tau, active, rng);
  }
  double theta(std::size_t num_active) const override {
    return inner_->theta(num_active);
  }
  void on_crash(std::size_t process) override {
    crash_log_.push_back(process);
    inner_->on_crash(process);
  }
  std::string name() const override { return inner_->name(); }

  const std::vector<std::size_t>& crash_log() const noexcept {
    return crash_log_;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::vector<std::size_t> crash_log_;
};

std::unique_ptr<Scheduler> make_variant_scheduler(std::size_t variant,
                                                  std::size_t n) {
  switch (variant % 4) {
    case 0:
      return std::make_unique<core::UniformScheduler>();
    case 1:
      return std::make_unique<core::StickyScheduler>(0.9);
    case 2:
      return std::make_unique<core::WeightedScheduler>(
          core::make_zipf_scheduler(n, 1.5));
    default: {
      // A bursty rotating adversary softened into a stochastic scheduler
      // with a small theta — the minimal fairness Theorem 3 assumes.
      auto adversary = std::make_unique<core::AdversarialScheduler>(
          [](std::uint64_t tau, std::span<const std::size_t> active) {
            return active[(tau / 5) % active.size()];
          },
          "rotating-burst");
      const double theta = 0.05 / static_cast<double>(n);
      return std::make_unique<core::ThetaMixScheduler>(theta,
                                                       std::move(adversary));
    }
  }
}

}  // namespace

Session::Session(std::unique_ptr<Spec> spec, CheckOptions options)
    : spec_(std::move(spec)), options_(options) {
  if (!spec_) {
    throw std::invalid_argument("Session: spec must not be null");
  }
}

Session::Session(const Workload& workload, CheckOptions options)
    : workload_(&workload), spec_(workload.make_spec()), options_(options) {}

const Workload& Session::require_workload() const {
  if (!workload_) {
    throw std::logic_error(
        "Session: record/replay/explore need a workload session");
  }
  return *workload_;
}

LinResult Session::check(const History& history) const {
  const bool split =
      options_.partition == PartitionMode::kByObject ||
      (options_.partition == PartitionMode::kAuto && spec_->multi_object());
  if (!split) return check_linearizability(history, *spec_, options_);

  std::vector<History> parts = partition_history(history, *spec_);
  if (parts.size() <= 1) {
    LinResult whole = check_linearizability(history, *spec_, options_);
    whole.parts = parts.size();
    return whole;
  }

  // Every part is always checked (no early exit on the first violation)
  // and the merge walks parts in partition order, so the merged result —
  // verdict, node count, parts, timed_out — is identical for any shard
  // count. That invariance is what makes `shards` a pure performance
  // knob, and it is what the determinism tests pin down.
  std::vector<LinResult> results(parts.size());
  exp::parallel_for(parts.size(), options_.shards, [&](std::size_t i) {
    results[i] = check_linearizability(parts[i], *spec_, options_);
  });

  LinResult merged;
  merged.verdict = LinVerdict::kLinearizable;
  merged.parts = parts.size();
  for (const LinResult& part : results) {
    merged.nodes += part.nodes;
    merged.timed_out = merged.timed_out || part.timed_out;
    if (part.verdict == LinVerdict::kNotLinearizable) {
      merged.verdict = LinVerdict::kNotLinearizable;
    } else if (part.verdict == LinVerdict::kUnknown &&
               merged.verdict == LinVerdict::kLinearizable) {
      merged.verdict = LinVerdict::kUnknown;
    }
  }
  return merged;
}

RunOutcome Session::record(std::size_t n, std::uint64_t seed,
                           std::uint64_t steps, std::size_t variant,
                           const std::vector<CrashEvent>& crashes) const {
  const Workload& workload = require_workload();
  SimTraceRecorder events;
  auto logging =
      std::make_unique<CrashLogScheduler>(make_variant_scheduler(variant, n));
  CrashLogScheduler* logging_ptr = logging.get();
  auto sim = workload.build(n, seed, std::move(logging), &events);
  TraceRecorder schedule;
  sim->set_observer(&schedule);
  for (const CrashEvent& c : crashes) sim->schedule_crash(c.tau, c.pid);
  sim->run(steps);

  RunOutcome out;
  out.trace.workload = workload.name;
  out.trace.n = static_cast<std::uint32_t>(n);
  out.trace.seed = seed;
  out.trace.steps = schedule.take_steps();
  out.trace.crashes = crashes;
  out.step_completed = schedule.take_completed_flags();
  out.crash_log = logging_ptr->crash_log();
  out.history = events.history();
  out.lin = check(out.history);
  return out;
}

RunOutcome Session::replay(const ScheduleTrace& trace, bool strict) const {
  const Workload& workload = require_workload();
  SimTraceRecorder events;
  auto replay = std::make_unique<ReplayScheduler>(trace.steps, strict);
  ReplayScheduler* replay_ptr = replay.get();
  auto sim = workload.build(trace.n, trace.seed, std::move(replay), &events);
  TraceRecorder schedule;
  sim->set_observer(&schedule);
  for (const CrashEvent& c : trace.crashes) sim->schedule_crash(c.tau, c.pid);
  sim->run(trace.steps.size());

  RunOutcome out;
  out.trace.workload = trace.workload;
  out.trace.n = trace.n;
  out.trace.seed = trace.seed;
  out.trace.steps = schedule.take_steps();  // the *effective* schedule
  out.trace.crashes = trace.crashes;
  out.step_completed = schedule.take_completed_flags();
  out.crash_log = replay_ptr->crash_log();
  out.history = events.history();
  out.lin = check(out.history);
  return out;
}

namespace {

/// The minimizer's probe: does this candidate trace still produce a
/// non-linearizable history? Any exception (divergent crash plan, crash
/// of the last active process, malformed history) rejects the candidate.
bool still_fails(const Session& session, const ScheduleTrace& candidate) {
  if (candidate.steps.empty()) return false;
  try {
    const RunOutcome out = session.replay(candidate, /*strict=*/false);
    return out.lin.verdict == LinVerdict::kNotLinearizable;
  } catch (const std::exception&) {
    return false;
  }
}

/// Operation-drop pre-pass: segment the effective schedule into whole
/// operations with the recorder's completion flags, then greedily drop
/// each completed operation's steps (latest first) while the trace still
/// fails. Dropping whole operations shrinks the *history*, which ddmin
/// over raw steps only does by luck; the schedule that survives is what
/// ddmin then polishes. Every candidate is verified by lenient replay,
/// so the pre-pass can only keep failing traces.
ScheduleTrace drop_completed_operations(const Session& session,
                                        const ScheduleTrace& failing) {
  RunOutcome base;
  try {
    base = session.replay(failing, /*strict=*/false);
  } catch (const std::exception&) {
    return failing;
  }
  if (base.lin.verdict != LinVerdict::kNotLinearizable ||
      base.step_completed.size() != base.trace.steps.size()) {
    return failing;
  }
  const std::vector<std::uint32_t>& steps = base.trace.steps;
  const std::vector<char>& completed = base.step_completed;

  struct OpGroup {
    std::vector<std::size_t> step_indices;
    bool complete = false;
  };
  std::vector<OpGroup> groups;
  std::vector<std::size_t> open_group(base.trace.n, SIZE_MAX);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::uint32_t pid = steps[i];
    if (pid >= base.trace.n) return failing;  // malformed; leave to ddmin
    if (open_group[pid] == SIZE_MAX) {
      open_group[pid] = groups.size();
      groups.emplace_back();
    }
    OpGroup& group = groups[open_group[pid]];
    group.step_indices.push_back(i);
    if (completed[i]) {
      group.complete = true;
      open_group[pid] = SIZE_MAX;
    }
  }

  std::vector<char> keep(steps.size(), 1);
  ScheduleTrace current = base.trace;
  const auto build = [&](const std::vector<char>& mask) {
    ScheduleTrace t = base.trace;
    t.steps.clear();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (mask[i]) t.steps.push_back(steps[i]);
    }
    return t;
  };
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    if (!it->complete) continue;
    std::vector<char> trial = keep;
    for (const std::size_t i : it->step_indices) trial[i] = 0;
    ScheduleTrace candidate = build(trial);
    if (candidate.steps.empty()) continue;
    if (still_fails(session, candidate)) {
      keep = std::move(trial);
      current = std::move(candidate);
    }
  }
  return current;
}

}  // namespace

ScheduleTrace Session::minimize(const ScheduleTrace& failing,
                                const MinimizeOptions& minimize_options) const {
  require_workload();
  if (!still_fails(*this, failing)) {
    throw std::invalid_argument(
        "Session::minimize: input trace does not fail");
  }
  ScheduleTrace current = failing;
  if (minimize_options.drop_operations) {
    current = drop_completed_operations(*this, current);
  }

  // Classic ddmin over the pid sequence, probing with lenient replay so
  // any subsequence is a legal candidate schedule.
  std::size_t granularity = 2;
  while (current.steps.size() >= 2) {
    const std::size_t len = current.steps.size();
    const std::size_t chunk = std::max<std::size_t>(1, len / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < len; start += chunk) {
      ScheduleTrace candidate = current;
      const auto first =
          candidate.steps.begin() + static_cast<std::ptrdiff_t>(start);
      const auto last =
          candidate.steps.begin() +
          static_cast<std::ptrdiff_t>(std::min(start + chunk, len));
      candidate.steps.erase(first, last);
      if (still_fails(*this, candidate)) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (chunk == 1) break;
    granularity = std::min(granularity * 2, current.steps.size());
  }

  // Greedy crash-event dropping (a crash the failure does not need only
  // obscures the reproducer).
  for (std::size_t i = 0; i < current.crashes.size();) {
    ScheduleTrace candidate = current;
    candidate.crashes.erase(candidate.crashes.begin() +
                            static_cast<std::ptrdiff_t>(i));
    if (still_fails(*this, candidate)) {
      current = std::move(candidate);
    } else {
      ++i;
    }
  }

  // Re-record from the effective schedule of a final lenient replay, so
  // the published witness replays strictly: every entry in the effective
  // sequence was genuinely scheduled on an active process.
  RunOutcome final_run = replay(current, /*strict=*/false);
  ScheduleTrace minimized = std::move(final_run.trace);
  if (final_run.lin.verdict != LinVerdict::kNotLinearizable) {
    // Should be unreachable: the effective schedule reproduces the same
    // run the probe just accepted. Fall back to the probed candidate.
    return current;
  }
  return minimized;
}

ExploreResult Session::explore(const ExploreOptions& options) const {
  const Workload& workload = require_workload();
  const std::size_t n = options.n ? options.n : workload.default_n;
  const std::uint64_t steps =
      options.steps ? options.steps : workload.default_steps;

  ExploreResult result;
  result.workload = workload.name;
  // ddmin finds a 1-minimal *schedule*, which is only a local minimum in
  // history events; keep a few failing candidates and publish whichever
  // minimizes smallest.
  constexpr std::size_t kWitnessCandidates = 5;
  std::vector<ScheduleTrace> failures;

  for (std::size_t i = 0; i < options.schedules; ++i) {
    const std::uint64_t seed = derive_check_seed(options.base_seed, i);

    // Crash plan: none on every third schedule, otherwise 1..n-1 victims
    // at rng-drawn times (the engine guarantees one survivor).
    std::vector<CrashEvent> crashes;
    if (options.crashes && i % 3 != 0 && n >= 2) {
      Xoshiro256pp rng(derive_check_seed(seed, 0xC7A5ULL));
      const std::size_t num_crashes =
          1 + static_cast<std::size_t>(rng() % (n - 1));
      std::vector<std::uint32_t> victims(n);
      for (std::size_t p = 0; p < n; ++p) {
        victims[p] = static_cast<std::uint32_t>(p);
      }
      for (std::size_t c = 0; c < num_crashes; ++c) {
        const std::size_t pick = c + rng() % (victims.size() - c);
        std::swap(victims[c], victims[pick]);
        crashes.push_back({1 + rng() % steps, victims[c]});
      }
      std::stable_sort(crashes.begin(), crashes.end(),
                       [](const CrashEvent& a, const CrashEvent& b) {
                         return a.tau < b.tau;
                       });
    }

    RunOutcome run = record(n, seed, steps, i, crashes);
    ++result.schedules_run;
    result.nodes += run.lin.nodes;
    if (run.lin.verdict == LinVerdict::kUnknown) ++result.unknowns;
    if (run.lin.verdict == LinVerdict::kNotLinearizable) {
      ++result.violations;
      if (failures.size() < kWitnessCandidates) {
        failures.push_back(std::move(run.trace));
      }
      if (options.stop_at_first) break;
    }
  }

  constexpr std::size_t kSmallEnoughEvents = 20;
  for (const ScheduleTrace& failure : failures) {
    Witness witness;
    witness.trace = options.minimize
                        ? minimize(failure, options.minimize_options)
                        : failure;
    witness.trace_fingerprint = witness.trace.fingerprint();
    const RunOutcome certified = replay(witness.trace, /*strict=*/true);
    witness.history_fingerprint = certified.history.fingerprint();
    witness.history_events = certified.history.num_events();
    witness.rendered = certified.history.render();
    if (!result.witness ||
        witness.history_events < result.witness->history_events) {
      result.witness = std::move(witness);
    }
    if (!options.minimize ||
        result.witness->history_events <= kSmallEnoughEvents) {
      break;
    }
  }
  return result;
}

}  // namespace pwf::check
