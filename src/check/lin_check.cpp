#include "check/lin_check.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

namespace pwf::check {

const char* verdict_name(LinVerdict v) {
  switch (v) {
    case LinVerdict::kLinearizable: return "LINEARIZABLE";
    case LinVerdict::kNotLinearizable: return "NOT-LINEARIZABLE";
    case LinVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

namespace {

using Bitset = std::vector<std::uint64_t>;

bool test_bit(const Bitset& bits, std::size_t i) {
  return (bits[i / 64] >> (i % 64)) & 1;
}
void set_bit(Bitset& bits, std::size_t i) { bits[i / 64] |= 1ULL << (i % 64); }
void clear_bit(Bitset& bits, std::size_t i) {
  bits[i / 64] &= ~(1ULL << (i % 64));
}

/// The WGL minimality rule: an un-linearized operation may linearize next
/// iff its invocation precedes every other un-linearized operation's
/// response. Equivalently: invoke < min un-linearized response (the
/// owner of that minimum always qualifies, since invoke < response).
std::vector<std::size_t> minimal_ops(const std::vector<Operation>& ops,
                                     const Bitset& linearized) {
  std::uint64_t min_response = Operation::kPending;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!test_bit(linearized, i)) {
      min_response = std::min(min_response, ops[i].response);
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!test_bit(linearized, i) && ops[i].invoke < min_response) {
      out.push_back(i);
    }
  }
  // Also the owner of min_response when its invoke == ... (invoke <
  // response always holds, so the owner is already included).
  return out;
}

std::string memo_key(const Bitset& bits, const SpecState& state) {
  std::string key;
  key.reserve(bits.size() * 8 + 16);
  for (std::uint64_t w : bits) {
    for (int i = 0; i < 8; ++i) {
      key.push_back(static_cast<char>((w >> (8 * i)) & 0xff));
    }
  }
  state.digest(key);
  return key;
}

}  // namespace

LinResult check_linearizability(const History& history, const Spec& spec,
                                const CheckOptions& options) {
  const std::vector<Operation>& ops = history.operations();
  const std::size_t m = ops.size();
  LinResult result;
  const std::size_t completed_total = history.num_completed();
  if (completed_total == 0) {
    // Only pending operations (or none): trivially linearizable — every
    // pending op may simply never have taken effect.
    result.verdict = LinVerdict::kLinearizable;
    return result;
  }

  Bitset linearized((m + 63) / 64, 0);
  std::size_t completed_done = 0;
  std::unordered_set<std::string> seen;

  struct Frame {
    std::vector<std::size_t> candidates;
    std::size_t next = 0;  ///< next candidate to try
    std::unique_ptr<SpecState> state;  ///< state on entry to this frame
    std::size_t chosen = 0;  ///< candidate linearized to reach the child
  };

  std::vector<Frame> stack;
  stack.push_back({minimal_ops(ops, linearized), 0, spec.initial(), 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();

    if (completed_done == completed_total) {
      // Every completed operation linearized: the remaining (pending)
      // operations are free to never take effect.
      result.verdict = LinVerdict::kLinearizable;
      for (std::size_t d = 0; d + 1 < stack.size(); ++d) {
        result.linearization.push_back(stack[d].chosen);
      }
      return result;
    }

    bool descended = false;
    while (frame.next < frame.candidates.size()) {
      const std::size_t c = frame.candidates[frame.next++];
      if (++result.nodes > options.max_nodes) {
        result.verdict = LinVerdict::kUnknown;
        return result;
      }
      std::unique_ptr<SpecState> child_state = frame.state->clone();
      if (!spec.apply(*child_state, ops[c])) continue;
      set_bit(linearized, c);
      if (!seen.insert(memo_key(linearized, *child_state)).second) {
        clear_bit(linearized, c);  // provably redundant: already explored
        continue;
      }
      frame.chosen = c;
      if (ops[c].completed()) ++completed_done;
      stack.push_back({minimal_ops(ops, linearized), 0,
                       std::move(child_state), 0});
      descended = true;
      break;
    }
    if (descended) continue;

    // Candidates exhausted: backtrack.
    stack.pop_back();
    if (!stack.empty()) {
      const std::size_t undo = stack.back().chosen;
      clear_bit(linearized, undo);
      if (ops[undo].completed()) --completed_done;
    }
  }

  result.verdict = LinVerdict::kNotLinearizable;
  return result;
}

std::vector<History> partition_history(
    const History& history,
    const std::function<std::uint64_t(const Operation&)>& object_of) {
  std::map<std::uint64_t, std::vector<Operation>> parts;
  for (const Operation& op : history.operations()) {
    parts[object_of(op)].push_back(op);
  }
  std::vector<History> out;
  out.reserve(parts.size());
  for (auto& [object, part_ops] : parts) {
    out.emplace_back(std::move(part_ops));
  }
  return out;
}

LinResult check_partitioned(
    const History& history, const Spec& spec,
    const std::function<std::uint64_t(const Operation&)>& object_of,
    const CheckOptions& options) {
  LinResult merged;
  merged.verdict = LinVerdict::kLinearizable;
  for (const History& part : partition_history(history, object_of)) {
    LinResult r = check_linearizability(part, spec, options);
    merged.nodes += r.nodes;
    if (r.verdict == LinVerdict::kNotLinearizable) {
      merged.verdict = LinVerdict::kNotLinearizable;
      merged.linearization.clear();
      return merged;
    }
    if (r.verdict == LinVerdict::kUnknown) {
      merged.verdict = LinVerdict::kUnknown;
      merged.linearization.clear();
    }
  }
  return merged;
}

}  // namespace pwf::check
