#include "check/lin_check.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <numeric>
#include <unordered_set>

namespace pwf::check {

const char* verdict_name(LinVerdict v) {
  switch (v) {
    case LinVerdict::kLinearizable: return "LINEARIZABLE";
    case LinVerdict::kNotLinearizable: return "NOT-LINEARIZABLE";
    case LinVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

namespace {

using Bitset = std::vector<std::uint64_t>;
using Clock = std::chrono::steady_clock;

bool test_bit(const Bitset& bits, std::size_t i) {
  return (bits[i / 64] >> (i % 64)) & 1;
}
void set_bit(Bitset& bits, std::size_t i) { bits[i / 64] |= 1ULL << (i % 64); }
void clear_bit(Bitset& bits, std::size_t i) {
  bits[i / 64] &= ~(1ULL << (i % 64));
}

/// Wall-clock budget guard, polled coarsely (a steady_clock read every
/// node would dominate short searches).
class TimeBudget {
 public:
  explicit TimeBudget(double budget_ms)
      : budget_ms_(budget_ms), start_(Clock::now()) {}

  bool exceeded() {
    if (budget_ms_ <= 0.0) return false;
    if (++polls_ % 1024 != 0) return false;
    const double elapsed = std::chrono::duration<double, std::milli>(
                               Clock::now() - start_)
                               .count();
    return elapsed > budget_ms_;
  }

 private:
  double budget_ms_;
  Clock::time_point start_;
  std::uint64_t polls_ = 0;
};

// ---------------------------------------------------------------------------
// Legacy engine (pruning = false): the original Wing & Gong search with a
// full O(history) candidate scan and full-bitmask memo keys. Kept
// verbatim as the golden baseline the pruned engine is validated against.
// ---------------------------------------------------------------------------

/// The WGL minimality rule: an un-linearized operation may linearize next
/// iff its invocation precedes every other un-linearized operation's
/// response. Equivalently: invoke < min un-linearized response (the
/// owner of that minimum always qualifies, since invoke < response).
std::vector<std::size_t> minimal_ops(const std::vector<Operation>& ops,
                                     const Bitset& linearized) {
  std::uint64_t min_response = Operation::kPending;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!test_bit(linearized, i)) {
      min_response = std::min(min_response, ops[i].response);
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!test_bit(linearized, i) && ops[i].invoke < min_response) {
      out.push_back(i);
    }
  }
  return out;
}

std::string legacy_memo_key(const Bitset& bits, const SpecState& state) {
  std::string key;
  key.reserve(bits.size() * 8 + 16);
  for (std::uint64_t w : bits) {
    for (int i = 0; i < 8; ++i) {
      key.push_back(static_cast<char>((w >> (8 * i)) & 0xff));
    }
  }
  state.digest(key);
  return key;
}

LinResult check_whole_legacy(const History& history, const Spec& spec,
                             const CheckOptions& options) {
  const std::vector<Operation>& ops = history.operations();
  const std::size_t m = ops.size();
  LinResult result;
  const std::size_t completed_total = history.num_completed();
  if (completed_total == 0) {
    // Only pending operations (or none): trivially linearizable — every
    // pending op may simply never have taken effect.
    result.verdict = LinVerdict::kLinearizable;
    return result;
  }

  Bitset linearized((m + 63) / 64, 0);
  std::size_t completed_done = 0;
  std::unordered_set<std::string> seen;
  TimeBudget budget(options.time_budget_ms);

  struct Frame {
    std::vector<std::size_t> candidates;
    std::size_t next = 0;  ///< next candidate to try
    std::unique_ptr<SpecState> state;  ///< state on entry to this frame
    std::size_t chosen = 0;  ///< candidate linearized to reach the child
  };

  std::vector<Frame> stack;
  stack.push_back({minimal_ops(ops, linearized), 0, spec.initial(), 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();

    if (completed_done == completed_total) {
      // Every completed operation linearized: the remaining (pending)
      // operations are free to never take effect.
      result.verdict = LinVerdict::kLinearizable;
      for (std::size_t d = 0; d + 1 < stack.size(); ++d) {
        result.linearization.push_back(stack[d].chosen);
      }
      return result;
    }

    bool descended = false;
    while (frame.next < frame.candidates.size()) {
      const std::size_t c = frame.candidates[frame.next++];
      if (++result.nodes > options.max_nodes) {
        result.verdict = LinVerdict::kUnknown;
        return result;
      }
      if (budget.exceeded()) {
        result.verdict = LinVerdict::kUnknown;
        result.timed_out = true;
        return result;
      }
      std::unique_ptr<SpecState> child_state = frame.state->clone();
      if (!spec.apply(*child_state, ops[c])) continue;
      set_bit(linearized, c);
      const std::string key = legacy_memo_key(linearized, *child_state);
      if (seen.count(key)) {
        clear_bit(linearized, c);  // provably redundant: already explored
        continue;
      }
      if (!options.memo_budget || seen.size() < options.memo_budget) {
        seen.insert(key);
      }
      frame.chosen = c;
      if (ops[c].completed()) ++completed_done;
      stack.push_back({minimal_ops(ops, linearized), 0,
                       std::move(child_state), 0});
      descended = true;
      break;
    }
    if (descended) continue;

    // Candidates exhausted: backtrack.
    stack.pop_back();
    if (!stack.empty()) {
      const std::size_t undo = stack.back().chosen;
      clear_bit(linearized, undo);
      if (ops[undo].completed()) --completed_done;
    }
  }

  result.verdict = LinVerdict::kNotLinearizable;
  return result;
}

// ---------------------------------------------------------------------------
// Pruned engine (the default): interval index + frontier-window candidate
// scan + compact (frontier, beyond-frontier set, state digest) memo keys.
// ---------------------------------------------------------------------------

LinResult check_whole_pruned(const History& history, const Spec& spec,
                             const CheckOptions& options) {
  const std::vector<Operation>& ops = history.operations();
  const std::size_t m = ops.size();
  LinResult result;
  const std::size_t completed_total = history.num_completed();
  if (completed_total == 0) {
    result.verdict = LinVerdict::kLinearizable;
    return result;
  }

  // The interval index, built once per history: slot s is the s-th
  // operation in invocation order (histories from captures are already
  // sorted — the sort is a no-op — but hand-built ones need not be).
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&ops](std::size_t a, std::size_t b) {
                     return ops[a].invoke < ops[b].invoke;
                   });
  std::vector<std::uint64_t> inv(m), resp(m);
  std::vector<bool> completed(m);
  for (std::size_t s = 0; s < m; ++s) {
    inv[s] = ops[order[s]].invoke;
    resp[s] = ops[order[s]].response;
    completed[s] = ops[order[s]].completed();
  }

  Bitset linearized((m + 63) / 64, 0);
  std::size_t completed_done = 0;
  // The frontier: every slot below it is linearized. Slots >= frontier
  // that are linearized anyway live in `high_lin` (sorted ascending);
  // they are always inside the frontier's overlap window, so it stays
  // small. (frontier, high_lin) together encode the exact linearized
  // set in O(window) space — the compact memo key.
  std::size_t frontier = 0;
  std::vector<std::size_t> high_lin;
  std::unordered_set<std::string> seen;
  TimeBudget budget(options.time_budget_ms);

  // Candidate slots at the current node: scan forward from the frontier,
  // maintaining the running minimal un-linearized response. Once a slot's
  // invocation reaches that minimum the scan stops — every later slot
  // invokes no earlier (sorted) and responds after its own invocation, so
  // it can neither qualify nor lower the minimum. The collected window is
  // then filtered against the final minimum (it may have shrunk after a
  // window slot was admitted).
  std::vector<std::size_t> window;
  auto minimal_slots = [&]() {
    window.clear();
    std::uint64_t min_response = Operation::kPending;
    for (std::size_t s = frontier; s < m; ++s) {
      if (inv[s] >= min_response) break;
      if (test_bit(linearized, s)) continue;
      window.push_back(s);
      min_response = std::min(min_response, resp[s]);
    }
    std::vector<std::size_t> out;
    out.reserve(window.size());
    for (std::size_t s : window) {
      if (inv[s] < min_response) out.push_back(s);
    }
    return out;
  };

  auto memo_key = [&](const SpecState& state) {
    std::string key;
    key.reserve(16 + 8 * high_lin.size() + 16);
    auto put = [&key](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        key.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    };
    put(frontier);
    put(high_lin.size());  // explicit count: the prefix is self-delimiting
    for (std::size_t s : high_lin) put(s);
    state.digest(key);
    return key;
  };

  // Undoes the linearization of slot c that advanced the frontier from
  // `saved_frontier`: the consumed run [saved_frontier, frontier) minus c
  // is still linearized and returns to high_lin's front (ascending, below
  // every remaining entry); c itself leaves the linearized set.
  auto undo_choice = [&](std::size_t c, std::size_t saved_frontier) {
    if (c >= frontier) {
      high_lin.erase(std::lower_bound(high_lin.begin(), high_lin.end(), c));
    }
    std::vector<std::size_t> reopened;
    reopened.reserve(frontier - saved_frontier);
    for (std::size_t s = saved_frontier; s < frontier; ++s) {
      if (s != c) reopened.push_back(s);
    }
    high_lin.insert(high_lin.begin(), reopened.begin(), reopened.end());
    frontier = saved_frontier;
    clear_bit(linearized, c);
  };

  struct Frame {
    std::vector<std::size_t> candidates;
    std::size_t next = 0;
    std::unique_ptr<SpecState> state;
    std::size_t chosen = 0;  ///< slot linearized to reach the child
    /// Frontier value to restore when this frame is popped (the parent
    /// node's frontier, before `chosen` advanced it).
    std::size_t restore_frontier = 0;
  };

  std::vector<Frame> stack;
  stack.push_back({minimal_slots(), 0, spec.initial(), 0, 0});

  while (!stack.empty()) {
    Frame& frame = stack.back();

    if (completed_done == completed_total) {
      result.verdict = LinVerdict::kLinearizable;
      for (std::size_t d = 0; d + 1 < stack.size(); ++d) {
        result.linearization.push_back(order[stack[d].chosen]);
      }
      return result;
    }

    bool descended = false;
    while (frame.next < frame.candidates.size()) {
      const std::size_t c = frame.candidates[frame.next++];
      if (++result.nodes > options.max_nodes) {
        result.verdict = LinVerdict::kUnknown;
        return result;
      }
      if (budget.exceeded()) {
        result.verdict = LinVerdict::kUnknown;
        result.timed_out = true;
        return result;
      }
      std::unique_ptr<SpecState> child_state = frame.state->clone();
      if (!spec.apply(*child_state, ops[order[c]])) continue;

      // Tentatively linearize c: set its bit, register it beyond the
      // frontier, then advance the frontier over any now-contiguous run.
      set_bit(linearized, c);
      high_lin.insert(std::lower_bound(high_lin.begin(), high_lin.end(), c),
                      c);
      const std::size_t saved_frontier = frontier;
      while (!high_lin.empty() && high_lin.front() == frontier) {
        high_lin.erase(high_lin.begin());
        ++frontier;
      }

      const std::string key = memo_key(*child_state);
      if (seen.count(key)) {
        undo_choice(c, saved_frontier);  // provably redundant
        continue;
      }
      if (!options.memo_budget || seen.size() < options.memo_budget) {
        seen.insert(key);
      }
      frame.chosen = c;
      if (completed[c]) ++completed_done;
      stack.push_back(
          {minimal_slots(), 0, std::move(child_state), 0, saved_frontier});
      descended = true;
      break;
    }
    if (descended) continue;

    // Candidates exhausted: backtrack, undoing the parent's choice that
    // entered this frame.
    const std::size_t child_restore = frame.restore_frontier;
    stack.pop_back();
    if (!stack.empty()) {
      const std::size_t undo = stack.back().chosen;
      undo_choice(undo, child_restore);
      if (completed[undo]) --completed_done;
    }
  }

  result.verdict = LinVerdict::kNotLinearizable;
  return result;
}

}  // namespace

LinResult check_linearizability(const History& history, const Spec& spec,
                                const CheckOptions& options) {
  return options.pruning ? check_whole_pruned(history, spec, options)
                         : check_whole_legacy(history, spec, options);
}

std::vector<History> partition_history(
    const History& history,
    const std::function<std::uint64_t(const Operation&)>& object_of) {
  std::map<std::uint64_t, std::vector<Operation>> parts;
  for (const Operation& op : history.operations()) {
    parts[object_of(op)].push_back(op);
  }
  std::vector<History> out;
  out.reserve(parts.size());
  for (auto& [object, part_ops] : parts) {
    out.emplace_back(std::move(part_ops));
  }
  return out;
}

std::vector<History> partition_history(const History& history,
                                       const Spec& spec) {
  return partition_history(
      history, [&spec](const Operation& op) { return spec.object_of(op); });
}

LinResult check_partitioned(
    const History& history, const Spec& spec,
    const std::function<std::uint64_t(const Operation&)>& object_of,
    const CheckOptions& options) {
  LinResult merged;
  merged.verdict = LinVerdict::kLinearizable;
  const std::vector<History> parts = partition_history(history, object_of);
  merged.parts = parts.size() ? parts.size() : 1;
  for (const History& part : parts) {
    LinResult r = check_linearizability(part, spec, options);
    merged.nodes += r.nodes;
    merged.timed_out = merged.timed_out || r.timed_out;
    if (r.verdict == LinVerdict::kNotLinearizable) {
      merged.verdict = LinVerdict::kNotLinearizable;
      merged.linearization.clear();
      return merged;
    }
    if (r.verdict == LinVerdict::kUnknown) {
      merged.verdict = LinVerdict::kUnknown;
      merged.linearization.clear();
    }
  }
  return merged;
}

}  // namespace pwf::check
