// Seeded mutants: deliberately broken step machines used to validate
// that the linearizability checker actually rejects what it should.
//
// Each mutant is a small, realistic concurrency bug:
//   * RacyCounter      — fetch-and-increment as read-then-blind-write;
//                        two overlapping increments can both return the
//                        same "before" value (the classic lost update).
//   * AbaSimStack      — the Treiber stack with an *untagged* head CAS.
//                        Slot migration (a popper owns the popped slot
//                        and re-pushes it) makes the head revisit old
//                        refs, so a stale pop CAS can succeed and
//                        resurrect an already-popped node (ABA).
//   * NoHelpSimQueue   — the Michael-Scott queue with the dequeue-side
//                        helping CAS removed: a dequeue at head == tail
//                        pops straight past the lagging tail. Recycling
//                        the popped slot while tail still points at it
//                        lets enqueuers link nodes after an off-queue
//                        node — elements are lost and later dequeues
//                        report empty after completed enqueues.
//
// All three emit the same OpTraceSink events as their correct
// counterparts, so they plug into the same exploration pipeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/memory.hpp"
#include "core/step_machine.hpp"

namespace pwf::check {

using core::OpCode;
using core::OpTraceSink;
using core::SharedMemory;
using core::StepMachine;
using core::StepMachineFactory;
using core::Value;

/// Lost-update counter: step 1 reads R, step 2 blindly writes R+1 and
/// reports the read value as the fetched one. Registers: [0] = R.
class RacyCounter final : public StepMachine {
 public:
  explicit RacyCounter(std::size_t pid) : pid_(pid) {}

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "mut-racy-counter"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static constexpr std::size_t registers_required() { return 1; }
  static StepMachineFactory factory();

 private:
  std::size_t pid_;
  bool writing_ = false;  // false: about to read; true: about to write
  Value v_ = 0;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;
};

/// SimStack with the tag stripped from the head register: head holds the
/// bare slot ref (0 = empty) and both CASes compare refs only. Same
/// register layout as SimStack otherwise:
///   [0]            head: slot_ref (no tag)
///   [1 + 2*(s-1)]  slot s: next ref
///   [2 + 2*(s-1)]  slot s: value
class AbaSimStack final : public StepMachine {
 public:
  AbaSimStack(std::size_t pid, std::size_t n, std::size_t slots_per_process);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "mut-aba-stack"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        std::size_t slots_per_process) {
    return 1 + 2 * n * slots_per_process;
  }
  static StepMachineFactory factory(std::size_t slots_per_process);

 private:
  enum class Phase {
    kPushWriteValue,
    kPushReadHead,
    kPushLinkNode,
    kPushCas,
    kPopReadHead,
    kPopReadNext,
    kPopReadValue,
    kPopCas,
  };

  static std::size_t next_reg(std::uint64_t slot) { return 1 + 2 * (slot - 1); }
  static std::size_t value_reg(std::uint64_t slot) {
    return 2 + 2 * (slot - 1);
  }

  void begin_op();

  std::size_t pid_;
  std::size_t n_;
  Phase phase_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;
  std::vector<std::uint64_t> free_slots_;
  Value head_snapshot_ = 0;  // bare ref
  std::uint64_t pending_slot_ = 0;
  Value pop_next_ = 0;
  Value pop_value_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t op_counter_ = 0;
};

/// SimQueue whose dequeue never helps a lagging tail: at head == tail with
/// a non-null next it dequeues anyway, CAS-ing head past the tail. The
/// popped slot is recycled while tail still points at it. Register layout
/// and generation stamps are identical to SimQueue.
class NoHelpSimQueue final : public StepMachine {
 public:
  NoHelpSimQueue(std::size_t pid, std::size_t n,
                 std::size_t slots_per_process);

  bool step(SharedMemory& mem) override;
  std::string name() const override { return "mut-nohelp-queue"; }
  void set_trace(OpTraceSink* sink) override { trace_ = sink; }

  static std::size_t registers_required(std::size_t n,
                                        std::size_t slots_per_process) {
    return 2 * (1 + n * slots_per_process + 1);
  }
  /// head = tail = (tag 0, dummy slot 1), exactly like SimQueue.
  static std::vector<std::pair<std::size_t, Value>> initial_values();
  static StepMachineFactory factory(std::size_t slots_per_process);

 private:
  enum class Phase {
    kEnqWriteValue,
    kEnqResetNext,
    kEnqReadTail,
    kEnqReadNext,
    kEnqRecheckTail,
    kEnqHelpTail,  // enqueue still helps; the mutation is dequeue-side
    kEnqCasNext,
    kEnqSwingTail,
    kDeqReadHead,
    kDeqReadNext,
    kDeqCheckEmpty,
    kDeqReadValue,
    kDeqCasHead,
  };

  static constexpr Value pack(std::uint64_t hi, std::uint64_t lo) {
    return (hi << 32) | lo;
  }
  static std::uint64_t hi_of(Value v) { return v >> 32; }
  static std::uint64_t lo_of(Value v) { return v & 0xffffffffULL; }
  static std::size_t next_reg(std::uint64_t slot) {
    return static_cast<std::size_t>(2 * slot);
  }
  static std::size_t value_reg(std::uint64_t slot) {
    return static_cast<std::size_t>(2 * slot + 1);
  }

  void begin_op();

  std::size_t pid_;
  std::size_t n_;
  Phase phase_;
  OpTraceSink* trace_ = nullptr;
  bool invoked_ = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pool_;
  std::uint64_t my_slot_ = 0;
  std::uint64_t my_gen_ = 0;
  Value head_snapshot_ = 0;
  Value tail_snapshot_ = 0;
  Value next_snapshot_ = 0;
  Value deq_value_ = 0;
  std::uint64_t enqueues_ = 0;
  std::uint64_t op_counter_ = 0;
};

}  // namespace pwf::check
