// The exploration driver: fans randomized schedules — uniform, sticky,
// zipf-weighted, and theta-mixed adversarial, with and without crash
// plans — across seeds, captures each run's operation history, checks it
// for linearizability, and delta-debugs the first failing trace down to a
// minimal, strictly-replayable reproducer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/history.hpp"
#include "check/lin_check.hpp"
#include "check/trace.hpp"
#include "check/workloads.hpp"

namespace pwf::check {

/// Splitmix64-style seed derivation: independent streams per schedule
/// index, mirroring the experiment framework's convention.
std::uint64_t derive_check_seed(std::uint64_t base, std::uint64_t index);

struct ExploreOptions {
  std::size_t n = 0;          ///< processes; 0 = workload default
  std::uint64_t steps = 0;    ///< steps per schedule; 0 = workload default
  std::size_t schedules = 100;
  std::uint64_t base_seed = 1;
  bool crashes = true;        ///< inject crash plans on 2 of every 3 runs
  bool minimize = true;       ///< shrink the first failing trace
  bool stop_at_first = false; ///< stop exploring after the first violation
  MinimizeOptions minimize_options;  ///< forwarded to Session::minimize
  CheckOptions check;
};

/// What one recorded (or replayed) run produced.
struct RunOutcome {
  ScheduleTrace trace;   ///< the effective schedule (strictly replayable)
  History history;
  LinResult lin;
  std::vector<std::size_t> crash_log;  ///< Scheduler::on_crash order
  /// Per effective step: did it complete an operation? Parallel to
  /// trace.steps; segments the schedule into whole operations.
  std::vector<char> step_completed;
};

/// A minimized non-linearizable reproducer.
struct Witness {
  ScheduleTrace trace;  ///< minimized; replays strictly and bit-identically
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t history_fingerprint = 0;
  std::size_t history_events = 0;  ///< invoke+response count (witness size)
  std::string rendered;            ///< human-readable history
};

struct ExploreResult {
  std::string workload;
  std::size_t schedules_run = 0;
  std::size_t violations = 0;  ///< schedules with a non-linearizable history
  std::size_t unknowns = 0;    ///< schedules that exhausted the node budget
  std::uint64_t nodes = 0;     ///< checker nodes over all schedules
  std::optional<Witness> witness;  ///< first violation, minimized

  /// True iff what we saw matches the workload's expectation.
  bool as_expected(bool expect_linearizable) const {
    return expect_linearizable ? violations == 0 : violations > 0;
  }
};

/// DEPRECATED — these free functions are thin wrappers over
/// pwf::check::Session (each constructs a Session from the workload and
/// the given CheckOptions, then calls the method of the same name). New
/// code should hold a Session and reuse it.
RunOutcome record_run(const Workload& workload, std::size_t n,
                      std::uint64_t seed, std::uint64_t steps,
                      std::size_t variant,
                      const std::vector<CrashEvent>& crashes,
                      const CheckOptions& check);

RunOutcome replay_trace(const Workload& workload, const ScheduleTrace& trace,
                        bool strict, const CheckOptions& check);

ScheduleTrace minimize_trace(const Workload& workload,
                             const ScheduleTrace& failing,
                             const CheckOptions& check);

ExploreResult explore(const Workload& workload, const ExploreOptions& options);

}  // namespace pwf::check
