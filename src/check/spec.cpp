#include "check/spec.hpp"

#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

namespace pwf::check {

namespace {

void digest_value(std::string& out, Value v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// --- stack -------------------------------------------------------------------

struct StackState final : SpecState {
  std::vector<Value> items;  // back = top

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<StackState>(*this);
  }
  void digest(std::string& out) const override {
    digest_value(out, items.size());
    for (Value v : items) digest_value(out, v);
  }
};

class StackSpec final : public Spec {
 public:
  std::string name() const override { return "stack"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<StackState>();
  }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<StackState&>(state);
    switch (op.op) {
      case OpCode::kPush:
        if (!op.has_arg) return false;
        s.items.push_back(op.arg);
        return true;
      case OpCode::kPop: {
        if (s.items.empty()) {
          // Sequential result: empty pop (no return value).
          return !op.completed() || !op.has_ret;
        }
        const Value top = s.items.back();
        if (op.completed() && (!op.has_ret || op.ret != top)) return false;
        s.items.pop_back();
        return true;
      }
      default:
        return false;
    }
  }
};

// --- queue -------------------------------------------------------------------

struct QueueState final : SpecState {
  std::deque<Value> items;  // front = oldest

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<QueueState>(*this);
  }
  void digest(std::string& out) const override {
    digest_value(out, items.size());
    for (Value v : items) digest_value(out, v);
  }
};

class QueueSpec final : public Spec {
 public:
  std::string name() const override { return "queue"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<QueueState>();
  }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<QueueState&>(state);
    switch (op.op) {
      case OpCode::kEnqueue:
        if (!op.has_arg) return false;
        s.items.push_back(op.arg);
        return true;
      case OpCode::kDequeue: {
        if (s.items.empty()) {
          return !op.completed() || !op.has_ret;
        }
        const Value front = s.items.front();
        if (op.completed() && (!op.has_ret || op.ret != front)) return false;
        s.items.pop_front();
        return true;
      }
      default:
        return false;
    }
  }
};

// --- set ---------------------------------------------------------------------

struct SetState final : SpecState {
  std::set<Value> keys;

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<SetState>(*this);
  }
  void digest(std::string& out) const override {
    digest_value(out, keys.size());
    for (Value k : keys) digest_value(out, k);  // std::set iterates sorted
  }
};

class SetSpec final : public Spec {
 public:
  std::string name() const override { return "set"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<SetState>();
  }
  // Set membership per key is independent of every other key — the
  // canonical compositional object.
  std::uint64_t object_of(const Operation& op) const override {
    return op.arg;
  }
  bool multi_object() const override { return true; }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<SetState&>(state);
    if (!op.has_arg) return false;
    Value result = 0;
    switch (op.op) {
      case OpCode::kInsert:
        result = s.keys.insert(op.arg).second ? 1 : 0;
        break;
      case OpCode::kErase:
        result = s.keys.erase(op.arg) ? 1 : 0;
        break;
      case OpCode::kContains:
        result = s.keys.count(op.arg) ? 1 : 0;
        break;
      default:
        return false;
    }
    return !op.completed() || (op.has_ret && op.ret == result);
  }
};

// --- counter -----------------------------------------------------------------

struct CounterState final : SpecState {
  Value count = 0;

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<CounterState>(*this);
  }
  void digest(std::string& out) const override { digest_value(out, count); }
};

class CounterSpec final : public Spec {
 public:
  std::string name() const override { return "counter"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<CounterState>();
  }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<CounterState&>(state);
    if (op.op != OpCode::kFetchInc) return false;
    const Value before = s.count;
    s.count = before + 1;
    return !op.completed() || (op.has_ret && op.ret == before);
  }
};

// --- multi-counter (register file of independent counters) ------------------

struct MultiCounterState final : SpecState {
  std::map<Value, Value> counts;  // counter id -> value; absent = 0

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<MultiCounterState>(*this);
  }
  void digest(std::string& out) const override {
    digest_value(out, counts.size());
    for (const auto& [k, v] : counts) {  // std::map iterates sorted
      digest_value(out, k);
      digest_value(out, v);
    }
  }
};

class MultiCounterSpec final : public Spec {
 public:
  std::string name() const override { return "multi-counter"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<MultiCounterState>();
  }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<MultiCounterState&>(state);
    if (op.op != OpCode::kFetchInc || !op.has_arg) return false;
    Value& count = s.counts[op.arg];
    const Value before = count;
    count = before + 1;
    return !op.completed() || (op.has_ret && op.ret == before);
  }
  std::uint64_t object_of(const Operation& op) const override {
    return op.arg;
  }
  bool multi_object() const override { return true; }
};

// --- rcu (version register) --------------------------------------------------

struct RcuState final : SpecState {
  Value version = 0;

  std::unique_ptr<SpecState> clone() const override {
    return std::make_unique<RcuState>(*this);
  }
  void digest(std::string& out) const override { digest_value(out, version); }
};

class RcuSpec final : public Spec {
 public:
  std::string name() const override { return "rcu"; }
  std::unique_ptr<SpecState> initial() const override {
    return std::make_unique<RcuState>();
  }
  bool apply(SpecState& state, const Operation& op) const override {
    auto& s = static_cast<RcuState&>(state);
    switch (op.op) {
      case OpCode::kRcuUpdate:
        s.version += 1;
        return !op.completed() || (op.has_ret && op.ret == s.version);
      case OpCode::kRcuRead:
        // kTornRead (all-ones) can never equal a 32-bit version: a torn
        // snapshot is unlinearizable by construction.
        return !op.completed() || (op.has_ret && op.ret == s.version);
      default:
        return false;
    }
  }
};

}  // namespace

std::unique_ptr<Spec> make_stack_spec() { return std::make_unique<StackSpec>(); }
std::unique_ptr<Spec> make_queue_spec() { return std::make_unique<QueueSpec>(); }
std::unique_ptr<Spec> make_set_spec() { return std::make_unique<SetSpec>(); }
std::unique_ptr<Spec> make_counter_spec() {
  return std::make_unique<CounterSpec>();
}
std::unique_ptr<Spec> make_rcu_spec() { return std::make_unique<RcuSpec>(); }
std::unique_ptr<Spec> make_multi_counter_spec() {
  return std::make_unique<MultiCounterSpec>();
}

std::unique_ptr<Spec> make_spec(const std::string& kind) {
  if (kind == "stack") return make_stack_spec();
  if (kind == "queue") return make_queue_spec();
  if (kind == "set") return make_set_spec();
  if (kind == "counter") return make_counter_spec();
  if (kind == "multi-counter") return make_multi_counter_spec();
  if (kind == "rcu") return make_rcu_spec();
  throw std::invalid_argument("make_spec: unknown kind '" + kind + "'");
}

}  // namespace pwf::check
