// The linearizability checker: a Wing & Gong interval-order search with
// Lowe-style memoization (WGL).
//
// The search maintains (set of linearized operations, sequential state).
// At every node the *minimal* operations — those whose invocation
// precedes every other un-linearized operation's response — are the legal
// next linearization points; a child node exists for each minimal
// operation the sequential spec accepts. The history is linearizable iff
// a node is reachable in which every completed operation is linearized
// (pending operations are free to linearize with any result, or to never
// take effect at all — the crashed-operation semantics).
//
// Two search engines share that skeleton:
//
//   * The default *pruned* engine walks an interval index (operations
//     sorted by invocation, built once per history). Candidate
//     generation scans only the overlap window at the frontier — it
//     stops as soon as an invocation reaches the running minimal
//     response, which no later operation can undercut (response >
//     invocation always) — and memo keys encode (frontier, the few
//     linearized operations beyond it, state digest) instead of a full
//     bitmask. Cost per node is O(overlap width), not O(history), which
//     is what lets 10^5-event histories finish in seconds.
//   * The *legacy* engine (CheckOptions::pruning = false) is the
//     original O(history)-per-node scan with full-bitmask memo keys,
//     kept verbatim as the golden baseline the pruned engine is tested
//     against.
//
// Memoization keys are exact in both engines — a pruned node is provably
// redundant and verdicts are sound in both directions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "check/history.hpp"
#include "check/spec.hpp"

namespace pwf::check {

enum class LinVerdict {
  kLinearizable,
  kNotLinearizable,
  kUnknown,  ///< search budget exhausted before a verdict
};

const char* verdict_name(LinVerdict v);

/// How Session::check splits a history before searching.
enum class PartitionMode {
  kAuto,      ///< per object when the spec is multi-object, else whole
  kWhole,     ///< never partition
  kByObject,  ///< always partition by Spec::object_of
};

struct CheckOptions {
  /// Node budget per (sub-)history; the checker reports kUnknown beyond
  /// it. The default is generous for the short histories the explorer
  /// produces.
  std::uint64_t max_nodes = 4'000'000;

  /// Interval-order pruning + compact memo keys (the default engine).
  /// false selects the legacy whole-scan engine — the golden baseline.
  bool pruning = true;

  /// Maximum memoization entries per (sub-)history search (0 =
  /// unbounded). When the cache is full, new states are still explored,
  /// just no longer recorded — soundness is unaffected, only speed.
  std::uint64_t memo_budget = 0;

  /// Wall-clock budget for one check() call in milliseconds (0 = none);
  /// exceeding it yields kUnknown with LinResult::timed_out set.
  double time_budget_ms = 0.0;

  /// Partitioning mode for Session::check (free-function
  /// check_linearizability always checks the history it is given whole).
  PartitionMode partition = PartitionMode::kAuto;

  /// Worker threads Session::check fans partition shards across
  /// (0 = hardware concurrency, 1 = sequential).
  std::size_t shards = 1;
};

struct LinResult {
  LinVerdict verdict = LinVerdict::kUnknown;
  std::uint64_t nodes = 0;  ///< search nodes expanded
  std::size_t parts = 1;    ///< sub-histories checked (1 = whole history)
  bool timed_out = false;   ///< kUnknown because the wall budget expired
  /// A witness linearization (operation indices into the history) when
  /// the verdict is kLinearizable and the history was checked whole.
  std::vector<std::size_t> linearization;

  bool ok() const noexcept { return verdict == LinVerdict::kLinearizable; }
};

/// Checks one history, whole, against one sequential spec. Prefer
/// Session::check, which partitions multi-object histories and shards
/// the parts; this entry point remains for single-object call sites and
/// as the building block Session uses per part.
LinResult check_linearizability(const History& history, const Spec& spec,
                                const CheckOptions& options = {});

/// Splits a history into per-object sub-histories (linearizability is
/// compositional, so each part can be checked independently — and the
/// search cost is exponential in the per-part concurrency, not the
/// total). `object_of` maps an operation to its object id.
std::vector<History> partition_history(
    const History& history,
    const std::function<std::uint64_t(const Operation&)>& object_of);

/// Partitions using the spec's own key extraction (Spec::object_of).
std::vector<History> partition_history(const History& history,
                                       const Spec& spec);

/// DEPRECATED — use pwf::check::Session, which partitions via
/// Spec::object_of by default and runs shards in parallel. Kept as a
/// thin sequential wrapper so existing callers compile: partitions with
/// `object_of`, checks every part against `spec`, and merges verdicts
/// (NotLinearizable dominates Unknown dominates Linearizable; node
/// counts accumulate).
LinResult check_partitioned(
    const History& history, const Spec& spec,
    const std::function<std::uint64_t(const Operation&)>& object_of,
    const CheckOptions& options = {});

}  // namespace pwf::check
