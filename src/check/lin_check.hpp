// The linearizability checker: a Wing & Gong interval-order search with
// Lowe-style memoization (WGL).
//
// The search maintains (set of linearized operations, sequential state).
// At every node the *minimal* operations — those whose invocation
// precedes every other un-linearized operation's response — are the legal
// next linearization points; a child node exists for each minimal
// operation the sequential spec accepts. The history is linearizable iff
// a node is reachable in which every completed operation is linearized
// (pending operations are free to linearize with any result, or to never
// take effect at all — the crashed-operation semantics).
//
// Memoization keys are exact — the linearized-set bitmask concatenated
// with the spec state's canonical digest — so a pruned node is provably
// redundant and verdicts are sound in both directions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "check/history.hpp"
#include "check/spec.hpp"

namespace pwf::check {

enum class LinVerdict {
  kLinearizable,
  kNotLinearizable,
  kUnknown,  ///< search budget exhausted before a verdict
};

const char* verdict_name(LinVerdict v);

struct CheckOptions {
  /// Node budget; the checker reports kUnknown beyond it. The default is
  /// generous for the short histories the explorer produces.
  std::uint64_t max_nodes = 4'000'000;
};

struct LinResult {
  LinVerdict verdict = LinVerdict::kUnknown;
  std::uint64_t nodes = 0;  ///< search nodes expanded
  /// A witness linearization (operation indices into the history) when
  /// the verdict is kLinearizable.
  std::vector<std::size_t> linearization;

  bool ok() const noexcept { return verdict == LinVerdict::kLinearizable; }
};

/// Checks one history against one sequential spec.
LinResult check_linearizability(const History& history, const Spec& spec,
                                const CheckOptions& options = {});

/// Splits a history into per-object sub-histories (linearizability is
/// compositional, so each part can be checked independently — and the
/// search cost is exponential in the per-part concurrency, not the
/// total). `object_of` maps an operation to its object id.
std::vector<History> partition_history(
    const History& history,
    const std::function<std::uint64_t(const Operation&)>& object_of);

/// Convenience: partitions with `object_of`, checks every part against
/// `spec`, and merges verdicts (NotLinearizable dominates Unknown
/// dominates Linearizable; node counts accumulate).
LinResult check_partitioned(
    const History& history, const Spec& spec,
    const std::function<std::uint64_t(const Operation&)>& object_of,
    const CheckOptions& options = {});

}  // namespace pwf::check
