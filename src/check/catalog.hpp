// The structure catalog: one declarative table describing every
// structure the checking subsystem knows, in every incarnation it has.
//
// Before the catalog there were two hand-maintained registries — the
// simulated workload list (check/workloads.cpp) and the hardware capture
// list (HwSession::registry() in check/hw_capture.cpp) — that described
// the *same* structures under different names with no link between them
// (sim-stack and treiber-stack are both the Treiber stack). Every driver
// feature (listing, filtering, strategy columns, mutant gating) had to be
// wired twice. The catalog replaces both: one row per abstract structure,
// carrying
//
//   * the sequential spec it must linearize against,
//   * the expected verdict (stock vs seeded mutant),
//   * its synchronization-strategy tag, when the structure is a column of
//     the strategy matrix (lockfree/strategy.hpp),
//   * an optional *sim twin* — the step-machine workload Session explores
//     on simulated memory (name, defaults, builder), and
//   * an optional *hw twin* — the native structure HwSession captures on
//     real threads (name, note, mutant-build gating).
//
// workloads() and HwSession::registry() are now thin projections of this
// table (their legacy names and order are preserved exactly — twin names
// are the legacy registry names, and experiments derive seeds from
// registry indices, so order is ABI). New structures are appended here
// and show up in every driver at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/workloads.hpp"
#include "lockfree/strategy.hpp"

namespace pwf::check {

/// One abstract structure, with up to two checkable incarnations.
struct CatalogEntry {
  /// Canonical structure name (the hw twin's name where one exists).
  std::string name;
  /// make_spec key: stack, queue, set, counter, multi-counter, rcu.
  std::string spec_kind;
  bool expect_linearizable = true;
  /// Seeded-bug entry: expected to be *caught*, not to pass.
  bool mutant = false;
  /// Strategy-matrix column (skip-list family); nullopt for structures
  /// outside the matrix.
  std::optional<lockfree::SyncStrategy> strategy;

  /// Step-machine twin explored by Session on simulated shared memory.
  struct SimTwin {
    std::string workload;  ///< name in the workload registry
    std::size_t default_n = 3;
    std::uint64_t default_steps = 240;
    std::string note;
    WorkloadBuildFn build;
  };
  std::optional<SimTwin> sim;

  /// Native twin captured by HwSession on hardware threads. The capture
  /// body (per Stamp × Mem) lives in hw_capture.cpp keyed by `structure`.
  struct HwTwin {
    std::string structure;  ///< name in HwSession::registry()
    std::string note;
    /// Only registered when the build defines PWF_HW_MUTANTS (native
    /// seeded bugs are kept out of default builds).
    bool mutants_only = false;
  };
  std::optional<HwTwin> hw;
};

/// The full catalog, in registry order (append-only: experiments derive
/// per-structure seeds from projection indices).
const std::vector<CatalogEntry>& structure_catalog();

/// Looks an entry up by canonical name, sim-twin name, or hw-twin name;
/// throws std::invalid_argument if unknown.
const CatalogEntry& find_catalog_entry(const std::string& name);

/// The catalog rows tagged with `strategy` — one strategy column of the
/// structure matrix (empty filter = every row, tagged or not).
std::vector<const CatalogEntry*> catalog_column(
    std::optional<lockfree::SyncStrategy> strategy);

}  // namespace pwf::check
