// The checking façade: one object that owns the spec, the check policy
// (CheckOptions: engine, partitioning, shard pool, budgets), and — for
// workload sessions — the record/replay/explore pipeline.
//
// Before Session, every caller wired the pieces by hand: a spec from
// make_spec, a lambda for per-object partitioning (or none, silently
// giving up compositionality), free functions for record/replay/minimize
// each re-plumbing CheckOptions. Session collapses that into
//
//   Session session(find_workload("sharded-counter"), options);
//   LinResult r = session.check(history);        // partitioned + sharded
//   ExploreResult e = session.explore(explore_options);
//   RunOutcome   o = session.replay(trace);      // strict by default
//
// check() applies the spec's own key extraction (Spec::object_of) under
// PartitionMode::kAuto, so multi-object histories are split per object —
// Herlihy & Wing compositionality — and the parts are fanned across
// exp::parallel_for with CheckOptions::shards workers, each part's
// search carrying its own memoization cache. The merged LinResult is
// shard-count-invariant: parts are always all checked (no early exit)
// and merged in deterministic part order.
//
// The pre-Session free functions (check_linearizability,
// check_partitioned, record_run, replay_trace, minimize_trace, explore)
// remain as thin wrappers; new code should use Session.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/explore.hpp"
#include "check/history.hpp"
#include "check/lin_check.hpp"
#include "check/spec.hpp"
#include "check/trace.hpp"
#include "check/workloads.hpp"

namespace pwf::check {

class Session {
 public:
  /// Spec-only session: check() works (e.g. on hardware captures);
  /// record/replay/explore throw std::logic_error (no workload to run).
  explicit Session(std::unique_ptr<Spec> spec, CheckOptions options = {});

  /// Workload session: the full pipeline. The workload must outlive the
  /// session (registry workloads are static, so this is free).
  explicit Session(const Workload& workload, CheckOptions options = {});

  const CheckOptions& options() const noexcept { return options_; }
  const Spec& spec() const noexcept { return *spec_; }
  /// nullptr for spec-only sessions.
  const Workload* workload() const noexcept { return workload_; }

  /// Checks one history: partitions per Spec::object_of (PartitionMode
  /// kAuto splits only multi-object specs), fans the parts over
  /// CheckOptions::shards workers, and merges verdicts in part order
  /// (NotLinearizable dominates Unknown dominates Linearizable; node
  /// counts accumulate; budgets apply per part). The result is
  /// bit-identical for any shard count.
  LinResult check(const History& history) const;

  /// Records one schedule: builds the workload with scheduler variant
  /// `variant` (0 uniform, 1 sticky, 2 zipf, 3 theta-mix adversary) and
  /// the given crash plan, runs `steps` steps, and returns the trace +
  /// history + verdict (via check()).
  RunOutcome record(std::size_t n, std::uint64_t seed, std::uint64_t steps,
                    std::size_t variant,
                    const std::vector<CrashEvent>& crashes) const;

  /// Replays a trace. Strict mode throws std::runtime_error on any
  /// divergence; lenient mode accepts arbitrary candidate pid sequences
  /// (the minimizer's probe mode).
  RunOutcome replay(const ScheduleTrace& trace, bool strict = true) const;

  /// Shrinks a failing trace: optionally an operation-drop pre-pass
  /// (MinimizeOptions::drop_operations — drop whole completed operations
  /// and re-derive the schedule), then ddmin over the pid sequence, then
  /// greedy crash-event dropping. The result replays *strictly* and
  /// still fails. `failing` must itself fail.
  ScheduleTrace minimize(const ScheduleTrace& failing,
                         const MinimizeOptions& minimize_options = {}) const;

  /// The full pipeline: fans randomized schedules and crash plans,
  /// checks every captured history, and minimizes the smallest failing
  /// witness. `options.check` is ignored — the session's own
  /// CheckOptions govern every verdict.
  ExploreResult explore(const ExploreOptions& options = {}) const;

 private:
  const Workload& require_workload() const;

  const Workload* workload_ = nullptr;
  std::unique_ptr<Spec> spec_;
  CheckOptions options_;
};

}  // namespace pwf::check
