#include "check/hw_capture.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "check/catalog.hpp"
#include "check/session.hpp"
#include "check/spec.hpp"
#include "lockfree/counter.hpp"
#include "lockfree/ebr.hpp"
#include "mem/hazard_era.hpp"
#include "mem/pool.hpp"
#include "lockfree/harris_list.hpp"
#include "lockfree/hash_set.hpp"
#include "lockfree/lin_stamp.hpp"
#include "lockfree/ms_queue.hpp"
#include "lockfree/scu_object.hpp"
#include "lockfree/skiplist.hpp"
#include "lockfree/treiber_stack.hpp"
#ifdef PWF_HW_MUTANTS
#include "lockfree/treiber_stack_untagged.hpp"
#endif
#include "util/latch.hpp"
#include "util/rng.hpp"
#include "util/tsc.hpp"
#include "waitfree/object.hpp"

namespace pwf::check {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One captured operation: boundary stamps plus (in kLinPoint mode) the
/// lin-point bracket read back from the structure's stamp hooks. In
/// ticket mode the stamps are global tickets; in tsc mode they are raw
/// per-thread TSC readings until rank compression rewrites them into
/// dense ticket-like indices (compress_tsc_ranks).
struct OpRecord {
  std::uint32_t thread = 0;
  OpCode op = OpCode::kPush;
  bool has_arg = false;
  Value arg = 0;
  bool has_ret = false;
  Value ret = 0;
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  lockfree::LinStampRecord lin;
};

/// Which clock CaptureLog stamps from. kNone compiles the recorder down
/// to an immediate return on both sides of the call — the uninstrumented
/// baseline for overhead measurement.
enum class CaptureClock { kNone, kTicket, kTsc };

/// Per-thread recorder. begin()/end() stamp the boundary and (lin mode)
/// reset/read the thread-local stamp record around the call. Jitter
/// yields go between the boundary stamp and the call on both sides, so
/// they widen the boundary interval but not the lin bracket.
///
/// Contention-free discipline (tsc mode): the timed region performs zero
/// shared writes and zero allocation — records_ is reserved up front
/// (regrew() trips if that ever fails to hold), boundary stamps are
/// per-thread counter reads, and the invoke stamp is *deferred*: the
/// thread's previous stamp already bounds this op's invocation from
/// below (per-thread program order), so begin() reuses it instead of
/// reading the clock again, and a bracketed op reuses its lin post stamp
/// as the response bound. Lin-point tsc capture thus costs two clock
/// reads per op (pre + commit), call-boundary one.
class CaptureLog {
 public:
  CaptureLog(std::atomic<std::uint64_t>* ticket, std::uint32_t tid,
             const HwOptions& options, CaptureClock clock)
      : ticket_(ticket),
        tid_(tid),
        jitter_period_(options.jitter_period),
        lin_(options.stamp == StampMode::kLinPoint),
        clock_(clock) {
    if (clock_ != CaptureClock::kNone) {
      records_.reserve(options.ops_per_thread);
      reserved_ = records_.capacity();
    }
  }

  /// Takes the thread's first stamp. Called after the start latch opens
  /// so the first op's deferred invoke bound does not swallow the wait.
  void arm() {
    if (clock_ == CaptureClock::kTsc) last_stamp_ = util::tsc_monotonic();
  }

  void begin(OpCode op, bool has_arg, Value arg) {
    if (clock_ == CaptureClock::kNone) return;
    current_ = OpRecord{};
    current_.thread = tid_;
    current_.op = op;
    current_.has_arg = has_arg;
    current_.arg = arg;
    jitter_this_op_ =
        jitter_period_ != 0 && op_index_ % jitter_period_ == 0;
    if (clock_ == CaptureClock::kTicket) {
      current_.invoke = ticket_->fetch_add(1, std::memory_order_acq_rel);
    } else {
      current_.invoke = last_stamp_;  // deferred lower bound, no clock read
    }
    if (jitter_this_op_) std::this_thread::yield();
    if (lin_) {
      clock_ == CaptureClock::kTicket ? lockfree::TicketStamp::reset()
                                      : lockfree::TscStamp::reset();
    }
  }

  void end(bool has_ret, Value ret) {
    if (clock_ == CaptureClock::kNone) return;
    if (clock_ == CaptureClock::kTicket) {
      if (lin_) current_.lin = lockfree::TicketStamp::record();
      if (jitter_this_op_) std::this_thread::yield();
      current_.response = ticket_->fetch_add(1, std::memory_order_acq_rel);
    } else {
      if (lin_) current_.lin = lockfree::TscStamp::record();
      if (jitter_this_op_) std::this_thread::yield();
      // A complete bracket already carries a post-linearization stamp;
      // reuse it as the response bound rather than reading the clock
      // again. (The effective interval the checker sees is the bracket
      // either way; the boundary interval only feeds slack statistics.)
      const bool bracketed = current_.lin.has_pre && current_.lin.has_post;
      current_.response =
          bracketed ? current_.lin.post : util::tsc_monotonic();
      last_stamp_ = current_.response;
    }
    current_.has_ret = has_ret;
    current_.ret = ret;
    records_.push_back(current_);
    ++op_index_;
  }

  /// True when records_ outgrew its up-front reservation — an allocation
  /// happened inside the timed region and the burst's timing is suspect.
  bool regrew() const { return records_.capacity() != reserved_; }

  std::vector<OpRecord> take() { return std::move(records_); }

 private:
  std::atomic<std::uint64_t>* ticket_;
  std::uint32_t tid_;
  std::size_t jitter_period_;
  bool lin_;
  CaptureClock clock_;
  bool jitter_this_op_ = false;
  std::size_t op_index_ = 0;
  std::uint64_t last_stamp_ = 0;
  std::size_t reserved_ = 0;
  OpRecord current_;
  std::vector<OpRecord> records_;
};

/// Spawns options.threads real threads running `body(tid, log, rng)` and
/// merges their records. In ticket lin mode the burst's ticket counter
/// is bound to TicketStamp for the duration (bind happens strictly
/// before spawn and after join, the only times it is safe). Each
/// thread's recorder lives in a cache-line-padded slot, so no two
/// threads' capture state shares a line.
template <typename Body>
std::vector<OpRecord> run_threads(const HwOptions& options, std::uint64_t seed,
                                  bool bind_lin_ticket, CaptureClock clock,
                                  Body&& body) {
  std::atomic<std::uint64_t> ticket{0};
  if (bind_lin_ticket) lockfree::TicketStamp::bind(&ticket);
  struct alignas(util::kCacheLineBytes) ThreadSlot {
    std::vector<OpRecord> records;
    bool regrew = false;
  };
  std::vector<ThreadSlot> slots(options.threads);
  {
    // Start latch: a short burst (tens of microseconds of work) can
    // otherwise finish on one thread before the next is even spawned,
    // silently serializing the "concurrent" capture. No thread touches
    // the structure until every thread is runnable.
    util::StartLatch latch(options.threads);
    std::vector<std::thread> threads;
    threads.reserve(options.threads);
    for (std::size_t t = 0; t < options.threads; ++t) {
      threads.emplace_back([&, t] {
        if (options.pin_threads) util::pin_this_thread(t);
        // Recorder construction (and its burst-sized allocation) happens
        // before the latch, outside the timed region.
        CaptureLog log(&ticket, static_cast<std::uint32_t>(t), options,
                       clock);
        Xoshiro256pp rng(seed + 0x9E3779B97F4A7C15ULL * (t + 1));
        latch.arrive_and_wait();
        log.arm();
        body(static_cast<std::uint32_t>(t), log, rng);
        slots[t].regrew = log.regrew();
        slots[t].records = log.take();
      });
    }
    for (std::thread& th : threads) th.join();
  }
  if (bind_lin_ticket) lockfree::TicketStamp::bind(nullptr);

  std::vector<OpRecord> records;
  for (ThreadSlot& slot : slots) {
    if (slot.regrew) {
      throw std::logic_error(
          "hw_capture: record buffer regrew inside a timed burst "
          "(reserve undersized — ops_per_thread exceeded?)");
    }
    records.insert(records.end(), slot.records.begin(), slot.records.end());
  }
  return records;
}

/// Rewrites raw tsc stamps into dense ticket-like indices, in place.
///
/// Every recorded endpoint becomes an event (value, tid, seq): interval
/// lower bounds widened down by ε, upper bounds widened up by ε, with
/// seq = 4·record + {0 invoke, 1 pre, 2 post, 3 response} so the sort by
/// (value, tid, seq) is a deterministic total order even among equal
/// stamps. Each endpoint is then replaced by its rank in that order.
/// Widening only ever grows intervals (adds legal linearization orders),
/// so verdicts stay sound; ranks keep per-op nesting by construction —
/// invoke < pre strictly (per-thread monotonic repair) and post ties
/// with response break toward post — so effective ⊆ boundary holds in
/// rank space exactly as it does for tickets (DESIGN.md §6a).
void compress_tsc_ranks(std::vector<OpRecord>& records,
                        std::uint64_t epsilon) {
  struct Event {
    std::uint64_t value = 0;
    std::uint32_t tid = 0;
    std::uint64_t seq = 0;
    std::uint64_t* slot = nullptr;
  };
  const auto widen_lo = [epsilon](std::uint64_t v) {
    return v > epsilon ? v - epsilon : 0;
  };
  std::vector<Event> events;
  events.reserve(records.size() * 4);
  for (std::size_t i = 0; i < records.size(); ++i) {
    OpRecord& r = records[i];
    events.push_back({widen_lo(r.invoke), r.thread, 4 * i + 0, &r.invoke});
    if (r.lin.has_pre && r.lin.has_post) {
      events.push_back({widen_lo(r.lin.pre), r.thread, 4 * i + 1,
                        &r.lin.pre});
      events.push_back({r.lin.post + epsilon, r.thread, 4 * i + 2,
                        &r.lin.post});
    }
    events.push_back({r.response + epsilon, r.thread, 4 * i + 3,
                      &r.response});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.value != b.value) return a.value < b.value;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });
  for (std::size_t rank = 0; rank < events.size(); ++rank) {
    *events[rank].slot = rank;
  }
}

constexpr Value unique_value(std::uint32_t tid, std::size_t i) {
  return (static_cast<Value>(tid + 1) << 32) | static_cast<Value>(i);
}

constexpr Value kKeySpace = 8;  // small key range: operations collide

/// Constructs the reclamation domain for one capture burst. The three
/// policies take different constructor arguments, so this is the one
/// place the dispatch is policy-specific: the pool domain needs the
/// structure's block size and a capacity covering every allocation the
/// burst can keep live or blocked at once.
template <typename Mem>
std::unique_ptr<typename Mem::Domain> make_domain(std::size_t block_bytes,
                                                  const HwOptions& options) {
  // +2 slots: the workers, the constructor's temporary handle, slack.
  const std::size_t max_threads = options.threads + 2;
  if constexpr (std::is_same_v<Mem, mem::WaitFreePool>) {
    // Worst case every operation of the burst leaves a live node (a
    // push-only run), plus retired-but-blocked slack per thread.
    const std::size_t capacity =
        2 * options.threads * options.ops_per_thread + 4096;
    return std::make_unique<mem::WaitFreePoolDomain>(block_bytes, capacity,
                                                     max_threads);
  } else if constexpr (std::is_same_v<Mem, mem::HazardEra>) {
    return std::make_unique<mem::HazardEraDomain>(max_threads);
  } else {
    return std::make_unique<lockfree::EbrDomain>(max_threads);
  }
}

/// One capture round on a fresh structure instance. `Stamp` is
/// TicketStamp or TscStamp in kLinPoint mode (matching `clock`), NoStamp
/// otherwise; `Mem` is the reclamation policy under test.
template <typename Stamp, typename Mem>
std::vector<OpRecord> capture_burst(const HwStructure& structure,
                                    const HwOptions& options,
                                    CaptureClock clock, std::uint64_t seed) {
  // Only the ticket policy has shared state to bind; TscStamp stamps
  // thread-locally and must never capture the burst's ticket counter.
  const bool bind = std::is_same_v<Stamp, lockfree::TicketStamp>;
  const std::size_t ops = options.ops_per_thread;

  if (structure.name == "treiber-stack") {
    using Stack = lockfree::TreiberStack<Value, Stamp, Mem>;
    auto domain = make_domain<Mem>(Stack::kNodeBytes, options);
    Stack stack(*domain);
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
          typename Mem::ThreadHandle handle(*domain);
          for (std::size_t i = 0; i < ops; ++i) {
            if (rng() % 2 == 0) {
              const Value v = unique_value(tid, i);
              log.begin(OpCode::kPush, true, v);
              stack.push(handle, v);
              log.end(false, 0);
            } else {
              log.begin(OpCode::kPop, false, 0);
              const auto popped = stack.pop(handle);
              log.end(popped.has_value(), popped.value_or(0));
            }
          }
        });
  }
#ifdef PWF_HW_MUTANTS
  if (structure.name == "treiber-stack-untagged") {
    lockfree::TreiberStackUntagged<Stamp> stack;
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
          for (std::size_t i = 0; i < ops; ++i) {
            if (rng() % 2 == 0) {
              const Value v = unique_value(tid, i);
              log.begin(OpCode::kPush, true, v);
              stack.push(v);
              log.end(false, 0);
            } else {
              log.begin(OpCode::kPop, false, 0);
              const auto popped = stack.pop();
              log.end(popped.has_value(), popped.value_or(0));
            }
          }
        });
  }
#endif
  if (structure.name == "ms-queue") {
    using Queue = lockfree::MsQueue<Value, Stamp, Mem>;
    auto domain = make_domain<Mem>(Queue::kNodeBytes, options);
    Queue queue(*domain);
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
          typename Mem::ThreadHandle handle(*domain);
          for (std::size_t i = 0; i < ops; ++i) {
            if (rng() % 2 == 0) {
              const Value v = unique_value(tid, i);
              log.begin(OpCode::kEnqueue, true, v);
              queue.enqueue(handle, v);
              log.end(false, 0);
            } else {
              log.begin(OpCode::kDequeue, false, 0);
              const auto out = queue.dequeue(handle);
              log.end(out.has_value(), out.value_or(0));
            }
          }
        });
  }
  if (structure.name == "harris-list" || structure.name == "hash-set") {
    using List = lockfree::HarrisList<Value, Stamp, Mem>;
    using Set = lockfree::HashSet<Value, std::hash<Value>, Stamp, Mem>;
    auto domain = make_domain<Mem>(List::kNodeBytes, options);
    std::unique_ptr<List> list;
    std::unique_ptr<Set> set;
    if (structure.name == "harris-list") {
      list = std::make_unique<List>(*domain);
    } else {
      set = std::make_unique<Set>(*domain, 4);
    }
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
          (void)tid;
          typename Mem::ThreadHandle handle(*domain);
          for (std::size_t i = 0; i < ops; ++i) {
            const Value key = 1 + rng() % kKeySpace;
            const std::uint64_t roll = rng() % 3;
            const OpCode op = roll == 0   ? OpCode::kInsert
                              : roll == 1 ? OpCode::kErase
                                          : OpCode::kContains;
            log.begin(op, true, key);
            bool ok = false;
            if (list) {
              ok = op == OpCode::kInsert   ? list->insert(handle, key)
                   : op == OpCode::kErase  ? list->erase(handle, key)
                                           : list->contains(handle, key);
            } else {
              ok = op == OpCode::kInsert   ? set->insert(handle, key)
                   : op == OpCode::kErase  ? set->erase(handle, key)
                                           : set->contains(handle, key);
            }
            log.end(true, ok ? 1 : 0);
          }
        });
  }
  if (structure.name.rfind("skiplist-", 0) == 0) {
    // The strategy matrix: identical mixed set workload over all three
    // synchronization strategies (and, in mutant builds, the
    // validation-skipping mutant), so captures differ in strategy only.
    const auto capture_map = [&](auto* tag) {
      using Map = std::remove_pointer_t<decltype(tag)>;
      auto domain = make_domain<Mem>(Map::kNodeBytes, options);
      Map map(*domain);
      return run_threads(
          options, seed, bind, clock,
          [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
            (void)tid;
            typename Mem::ThreadHandle handle(*domain);
            for (std::size_t i = 0; i < ops; ++i) {
              const Value key = 1 + rng() % kKeySpace;
              const std::uint64_t roll = rng() % 3;
              const OpCode op = roll == 0   ? OpCode::kInsert
                                : roll == 1 ? OpCode::kErase
                                            : OpCode::kContains;
              log.begin(op, true, key);
              const bool ok =
                  op == OpCode::kInsert  ? map.insert(handle, key, key)
                  : op == OpCode::kErase ? map.erase(handle, key)
                                         : map.contains(handle, key);
              log.end(true, ok ? 1 : 0);
            }
          });
    };
    if (structure.name == "skiplist-coarse") {
      return capture_map(
          static_cast<lockfree::CoarseSkipListMap<Value, Value, Stamp, Mem>*>(
              nullptr));
    }
    if (structure.name == "skiplist-optimistic") {
      return capture_map(
          static_cast<
              lockfree::OptimisticSkipListMap<Value, Value, Stamp, Mem>*>(
              nullptr));
    }
    if (structure.name == "skiplist-lockfree") {
      return capture_map(
          static_cast<
              lockfree::LockFreeSkipListMap<Value, Value, Stamp, Mem>*>(
              nullptr));
    }
#ifdef PWF_HW_MUTANTS
    if (structure.name == "skiplist-novalidate") {
      return capture_map(
          static_cast<lockfree::OptimisticSkipListMap<Value, Value, Stamp,
                                                      Mem, false>*>(
              nullptr));
    }
#endif
  }
  if (structure.name == "cas-counter" || structure.name == "faa-counter") {
    lockfree::BasicCasCounter<Stamp> cas_counter;
    lockfree::BasicFetchAddCounter<Stamp> faa_counter;
    const bool use_cas = structure.name == "cas-counter";
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp&) {
          (void)tid;
          for (std::size_t i = 0; i < ops; ++i) {
            log.begin(OpCode::kFetchInc, false, 0);
            const std::uint64_t before = use_cas
                                             ? cas_counter.fetch_inc().value
                                             : faa_counter.fetch_inc().value;
            log.end(true, before);
          }
        });
  }
  if (structure.name == "scu-counter") {
    using Object = lockfree::ScuObject<std::uint64_t, Stamp, Mem>;
    auto domain = make_domain<Mem>(Object::kNodeBytes, options);
    Object object(*domain, 0);
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp&) {
          (void)tid;
          typename Mem::ThreadHandle handle(*domain);
          for (std::size_t i = 0; i < ops; ++i) {
            log.begin(OpCode::kFetchInc, false, 0);
            const auto [before, attempts] =
                object.apply(handle, [](std::uint64_t& s) {
                  const std::uint64_t old = s;
                  s += 1;
                  return old;
                });
            (void)attempts;
            log.end(true, before);
          }
        });
  }
  if (structure.name == "wf-counter") {
    using Object =
        waitfree::WaitFreeObject<waitfree::CounterState, Stamp, true, Mem>;
    auto domain = make_domain<Mem>(Object::kNodeBytes, options);
    Object object(*domain, waitfree::CounterState{});
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp&) {
          (void)tid;
          typename Mem::ThreadHandle handle(*domain);
          typename Object::Thread wf(object, handle);
          for (std::size_t i = 0; i < ops; ++i) {
            log.begin(OpCode::kFetchInc, false, 0);
            const std::uint64_t before =
                object.apply(wf, waitfree::counter_fetch_inc, 0);
            log.end(true, before);
          }
        });
  }
  if (structure.name == "wf-stack") {
    using Object =
        waitfree::WaitFreeObject<waitfree::StackState, Stamp, true, Mem>;
    auto domain = make_domain<Mem>(Object::kNodeBytes, options);
    Object object(*domain, waitfree::StackState{});
    return run_threads(
        options, seed, bind, clock,
        [&](std::uint32_t tid, CaptureLog& log, Xoshiro256pp& rng) {
          typename Mem::ThreadHandle handle(*domain);
          typename Object::Thread wf(object, handle);
          for (std::size_t i = 0; i < ops; ++i) {
            if (rng() % 2 == 0) {
              const Value v = unique_value(tid, i);
              log.begin(OpCode::kPush, true, v);
              object.apply(wf, waitfree::stack_push, v);
              log.end(false, 0);
            } else {
              log.begin(OpCode::kPop, false, 0);
              const std::uint64_t out =
                  object.apply(wf, waitfree::stack_pop, 0);
              log.end(out != waitfree::kEmptyResult,
                      out != waitfree::kEmptyResult ? out : 0);
            }
          }
        });
  }
  throw std::invalid_argument("HwSession: no capture body for '" +
                              structure.name + "'");
}

/// Resolves the runtime reclaim-policy option to the Mem template
/// parameter (the stamp mode and clock dispatch one level up, in run()).
template <typename Stamp>
std::vector<OpRecord> capture_dispatch(const HwStructure& structure,
                                       const HwOptions& options,
                                       CaptureClock clock,
                                       std::uint64_t seed) {
  switch (options.reclaim) {
    case mem::ReclaimPolicy::kHazardEra:
      return capture_burst<Stamp, mem::HazardEra>(structure, options, clock,
                                                  seed);
    case mem::ReclaimPolicy::kPool:
      return capture_burst<Stamp, mem::WaitFreePool>(structure, options,
                                                     clock, seed);
    case mem::ReclaimPolicy::kEpoch:
      break;
  }
  return capture_burst<Stamp, mem::Epoch>(structure, options, clock, seed);
}

double median_of(std::vector<std::uint64_t> values) {
  values.erase(std::remove(values.begin(), values.end(),
                           HwResult::kPendingSlack),
               values.end());
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double median = static_cast<double>(values[mid]);
  if (values.size() % 2 == 0) {
    const auto lower = *std::max_element(values.begin(), values.begin() + mid);
    median = (median + static_cast<double>(lower)) / 2.0;
  }
  return median;
}

// --------------------------------------------------------------------------
// Witness minimization.
//
// Dropping arbitrary operations from a history is NOT sound for witness
// purposes: removing a push whose value a kept pop returns fabricates a
// "pop of a never-pushed value" violation that the structure never
// committed. Each spec kind therefore gets drop units shaped so no kept
// operation loses the context that justified its return value:
//
//   stack / queue (unique-value workloads):
//   - a matched (push v, pop -> v) pair drops or stays together;
//   - an unmatched push (value never popped) may drop alone;
//   - an empty pop may drop alone;
//   - a value-returning pop with no matching push — the corruption
//     itself — and any value touched by more than one pop or push are
//     never dropped.
//
//   set / multi-counter (per-key independent objects):
//   - all operations on one key form a single unit — membership of (or
//     counts on) a key depend on every earlier op of that key, so a key
//     group drops or stays whole; keys with a pending op are frozen.
//   - multi-counter additionally shrinks each kept key group by the
//     counter suffix rule below.
//
//   counter (fetch-and-increment):
//   - the only sound keep-sets are *down-closed* in the return value:
//     keeping exactly the ops that returned < T preserves every kept
//     op's expected return (the dropped suffix only ever extended the
//     count upward), while dropping from the middle shifts returns and
//     fabricates gaps. Minimization is a descent on the threshold T.
//
// Every candidate subhistory is re-checked; the reported witness is
// checker-verified NOT-LINEARIZABLE, so minimization can only shrink a
// genuine violation, never invent one.

struct DropUnit {
  std::vector<std::size_t> ops;  ///< indices into the failing history
};

struct UnitPartition {
  std::vector<std::size_t> mandatory;  ///< always kept
  std::vector<DropUnit> units;         ///< droppable
};

UnitPartition partition_units(const History& failing,
                              const std::string& spec_kind) {
  const OpCode push_op =
      spec_kind == "stack" ? OpCode::kPush : OpCode::kEnqueue;
  const OpCode pop_op = spec_kind == "stack" ? OpCode::kPop : OpCode::kDequeue;
  const auto& ops = failing.operations();

  std::unordered_map<Value, std::vector<std::size_t>> pushes;
  std::unordered_map<Value, std::vector<std::size_t>> value_pops;
  UnitPartition out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (!op.completed()) {
      out.mandatory.push_back(i);
    } else if (op.op == push_op && op.has_arg) {
      pushes[op.arg].push_back(i);
    } else if (op.op == pop_op && op.has_ret) {
      value_pops[op.ret].push_back(i);
    } else if (op.op == pop_op) {
      out.units.push_back({{i}});  // empty pop
    } else {
      out.mandatory.push_back(i);  // foreign opcode: keep
    }
  }
  for (const auto& [value, idxs] : pushes) {
    const auto pops_it = value_pops.find(value);
    const std::size_t npops =
        pops_it == value_pops.end() ? 0 : pops_it->second.size();
    if (idxs.size() == 1 && npops == 1) {
      out.units.push_back({{idxs[0], pops_it->second[0]}});  // matched pair
    } else if (idxs.size() == 1 && npops == 0) {
      out.units.push_back({{idxs[0]}});  // unmatched push
    } else {
      // Duplicate pushes of one value, or one push popped several times
      // (the ABA signature): freeze everything touching this value.
      out.mandatory.insert(out.mandatory.end(), idxs.begin(), idxs.end());
      if (pops_it != value_pops.end()) {
        out.mandatory.insert(out.mandatory.end(), pops_it->second.begin(),
                             pops_it->second.end());
      }
    }
  }
  for (const auto& [value, idxs] : value_pops) {
    if (pushes.find(value) == pushes.end()) {
      // Pop of a never-pushed value: the violation itself.
      out.mandatory.insert(out.mandatory.end(), idxs.begin(), idxs.end());
    }
  }
  return out;
}

/// Whole-key groups for per-key-independent specs (set, multi-counter):
/// every operation on a key drops or stays with its group; keys touched
/// by a pending or argument-less operation are frozen. std::map keeps
/// the unit order (and hence the ddmin trajectory) deterministic.
UnitPartition partition_key_groups(const History& failing) {
  const auto& ops = failing.operations();
  std::map<Value, std::vector<std::size_t>> groups;
  std::map<Value, bool> frozen;
  UnitPartition out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_arg) {
      out.mandatory.push_back(i);
      continue;
    }
    groups[ops[i].arg].push_back(i);
    if (!ops[i].completed()) frozen[ops[i].arg] = true;
  }
  for (auto& [key, idxs] : groups) {
    if (frozen[key]) {
      out.mandatory.insert(out.mandatory.end(), idxs.begin(), idxs.end());
    } else {
      out.units.push_back({std::move(idxs)});
    }
  }
  return out;
}

History build_subhistory(const History& failing,
                         const std::vector<std::size_t>& mandatory,
                         const std::vector<DropUnit>& kept) {
  std::vector<std::size_t> indices = mandatory;
  for (const DropUnit& unit : kept) {
    indices.insert(indices.end(), unit.ops.begin(), unit.ops.end());
  }
  std::sort(indices.begin(), indices.end());
  std::vector<Operation> ops;
  ops.reserve(indices.size());
  for (const std::size_t i : indices) {
    ops.push_back(failing.operations()[i]);
  }
  return History(std::move(ops));  // indices ascending => invoke-sorted
}

using ProbeFn = std::function<bool(const History&)>;

/// ddmin over droppable units: find a small kept-set whose subhistory
/// still fails the checker.
std::vector<DropUnit> ddmin_units(const History& failing,
                                  const UnitPartition& partition,
                                  const ProbeFn& fails_history,
                                  const std::size_t max_probes,
                                  std::size_t& probes) {
  const auto fails = [&](const std::vector<DropUnit>& kept) {
    return fails_history(build_subhistory(failing, partition.mandatory, kept));
  };
  std::vector<DropUnit> kept = partition.units;
  // Cheapest first: maybe the mandatory core alone is already a witness.
  if (!kept.empty() && fails({})) {
    kept.clear();
  }
  std::size_t granularity = 2;
  while (kept.size() >= 2 && probes < max_probes) {
    const std::size_t chunk = (kept.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < kept.size() && !reduced;
         start += chunk) {
      std::vector<DropUnit> candidate;
      candidate.reserve(kept.size());
      for (std::size_t j = 0; j < kept.size(); ++j) {
        if (j < start || j >= start + chunk) candidate.push_back(kept[j]);
      }
      if (candidate.size() < kept.size() && fails(candidate)) {
        kept = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= kept.size()) break;
      granularity = std::min(kept.size(), granularity * 2);
    }
  }
  return kept;
}

/// Splits a group of op indices into the sorted distinct return values
/// of its completed fetch-incs plus the indices that can never drop
/// (pending or return-less ops).
struct CounterGroup {
  std::vector<std::size_t> frozen;           ///< always kept
  std::vector<std::size_t> by_ret;           ///< completed, sorted by ret
  std::vector<Value> distinct_rets;          ///< sorted, deduplicated
};

CounterGroup split_counter_group(const History& failing,
                                 const std::vector<std::size_t>& idxs) {
  const auto& ops = failing.operations();
  CounterGroup g;
  for (const std::size_t i : idxs) {
    if (ops[i].op == core::OpCode::kFetchInc && ops[i].completed() &&
        ops[i].has_ret) {
      g.by_ret.push_back(i);
    } else {
      g.frozen.push_back(i);  // pending / foreign ops never drop
    }
  }
  std::sort(g.by_ret.begin(), g.by_ret.end(),
            [&](std::size_t a, std::size_t b) {
              return ops[a].ret != ops[b].ret ? ops[a].ret < ops[b].ret
                                              : a < b;
            });
  for (const std::size_t i : g.by_ret) {
    if (g.distinct_rets.empty() || g.distinct_rets.back() != ops[i].ret) {
      g.distinct_rets.push_back(ops[i].ret);
    }
  }
  return g;
}

/// The ops of `group` kept at threshold step m: everything frozen plus
/// completed ops with ret < distinct_rets[m] (m == #distinct keeps all).
std::vector<std::size_t> counter_keep_at(const History& failing,
                                         const CounterGroup& group,
                                         std::size_t m) {
  const auto& ops = failing.operations();
  std::vector<std::size_t> out = group.frozen;
  for (const std::size_t i : group.by_ret) {
    if (m < group.distinct_rets.size() &&
        ops[i].ret >= group.distinct_rets[m]) {
      break;  // by_ret is sorted: the whole suffix is dropped
    }
    out.push_back(i);
  }
  return out;
}

/// Binary descent on the down-closed return threshold: the smallest
/// verified-failing prefix of distinct return values. `make_history`
/// maps a threshold step to the candidate history (so the multi-counter
/// path can hold its other key groups fixed). The initial hi (keep-all)
/// must be a known-failing history.
std::size_t descend_counter_threshold(
    std::size_t num_distinct,
    const std::function<History(std::size_t)>& make_history,
    const ProbeFn& fails_history) {
  std::size_t lo = 0;
  std::size_t hi = num_distinct;  // keep-all: known failing
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (fails_history(make_history(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

/// Counter witness: one global threshold descent over return values.
History minimize_counter_witness(const History& failing,
                                 const ProbeFn& fails_history,
                                 bool* minimized) {
  std::vector<std::size_t> all(failing.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const CounterGroup group = split_counter_group(failing, all);
  const auto make_history = [&](std::size_t m) {
    std::vector<std::size_t> keep = counter_keep_at(failing, group, m);
    std::sort(keep.begin(), keep.end());
    std::vector<Operation> ops;
    ops.reserve(keep.size());
    for (const std::size_t i : keep) ops.push_back(failing.operations()[i]);
    return History(std::move(ops));
  };
  const std::size_t m = descend_counter_threshold(
      group.distinct_rets.size(), make_history, fails_history);
  const History witness = make_history(m);
  *minimized = witness.size() < failing.size();
  return witness;
}

/// Multi-counter witness: ddmin over whole-key groups, then a per-key
/// suffix descent inside each surviving group.
History minimize_multi_counter_witness(const History& failing,
                                       const ProbeFn& fails_history,
                                       const std::size_t max_probes,
                                       std::size_t& probes, bool* minimized) {
  const UnitPartition partition = partition_key_groups(failing);
  std::vector<DropUnit> kept =
      ddmin_units(failing, partition, fails_history, max_probes, probes);
  for (std::size_t u = 0; u < kept.size(); ++u) {
    const CounterGroup group = split_counter_group(failing, kept[u].ops);
    if (group.distinct_rets.size() < 2) continue;
    const auto make_history = [&](std::size_t m) {
      std::vector<DropUnit> candidate = kept;
      candidate[u].ops = counter_keep_at(failing, group, m);
      return build_subhistory(failing, partition.mandatory, candidate);
    };
    const std::size_t m = descend_counter_threshold(
        group.distinct_rets.size(), make_history, fails_history);
    kept[u].ops = counter_keep_at(failing, group, m);
  }
  const History witness = build_subhistory(failing, partition.mandatory, kept);
  *minimized = witness.size() < failing.size();
  return witness;
}

}  // namespace

bool minimizable_spec(const std::string& spec_kind) {
  return spec_kind == "stack" || spec_kind == "queue" || spec_kind == "set" ||
         spec_kind == "counter" || spec_kind == "multi-counter";
}

History minimize_witness(const History& failing, const std::string& spec_kind,
                         const CheckOptions& check, std::size_t max_probes,
                         bool* minimized) {
  *minimized = false;
  if (!minimizable_spec(spec_kind)) return failing;

  CheckOptions probe_options = check;
  if (probe_options.time_budget_ms <= 0.0 ||
      probe_options.time_budget_ms > 500.0) {
    probe_options.time_budget_ms = 500.0;  // keep each probe cheap
  }
  Session probe(make_spec(spec_kind), probe_options);
  std::size_t probes = 0;
  // Probes that time out or exhaust the node budget count as "passed":
  // we never adopt an unverified candidate.
  const ProbeFn fails_history = [&](const History& candidate) {
    if (probes >= max_probes) return false;
    ++probes;
    return probe.check(candidate).verdict == LinVerdict::kNotLinearizable;
  };

  if (spec_kind == "counter") {
    return minimize_counter_witness(failing, fails_history, minimized);
  }
  if (spec_kind == "multi-counter") {
    return minimize_multi_counter_witness(failing, fails_history, max_probes,
                                          probes, minimized);
  }
  const UnitPartition partition =
      spec_kind == "set" ? partition_key_groups(failing)
                         : partition_units(failing, spec_kind);
  const std::vector<DropUnit> kept =
      ddmin_units(failing, partition, fails_history, max_probes, probes);
  const History witness = build_subhistory(failing, partition.mandatory, kept);
  *minimized = witness.size() < failing.size();
  return witness;
}

const char* stamp_mode_name(StampMode mode) {
  switch (mode) {
    case StampMode::kCallBoundary:
      return "call-boundary";
    case StampMode::kLinPoint:
      return "lin-point";
  }
  return "?";
}

std::optional<StampMode> parse_stamp_mode(const std::string& name) {
  if (name == "call-boundary" || name == "call_boundary" ||
      name == "boundary") {
    return StampMode::kCallBoundary;
  }
  if (name == "lin-point" || name == "lin_point" || name == "lin") {
    return StampMode::kLinPoint;
  }
  return std::nullopt;
}

const char* clock_mode_name(ClockMode mode) {
  switch (mode) {
    case ClockMode::kTicket:
      return "ticket";
    case ClockMode::kTsc:
      return "tsc";
  }
  return "?";
}

std::optional<ClockMode> parse_clock_mode(const std::string& name) {
  if (name == "ticket") return ClockMode::kTicket;
  if (name == "tsc") return ClockMode::kTsc;
  return std::nullopt;
}

bool HwResult::as_expected() const noexcept {
  return lin.verdict == (expect_linearizable ? LinVerdict::kLinearizable
                                             : LinVerdict::kNotLinearizable);
}

// The hardware registry is the hw projection of the structure catalog
// (check/catalog.hpp): every catalog entry with a hw twin, in catalog
// order, with native mutants gated behind PWF_HW_MUTANTS.
const std::vector<HwStructure>& HwSession::registry() {
  static const std::vector<HwStructure> kRegistry = [] {
    std::vector<HwStructure> out;
    for (const CatalogEntry& entry : structure_catalog()) {
      if (!entry.hw) continue;
#ifndef PWF_HW_MUTANTS
      if (entry.hw->mutants_only) continue;
#endif
      out.push_back(HwStructure{entry.hw->structure, entry.spec_kind,
                                entry.expect_linearizable, entry.hw->note});
    }
    return out;
  }();
  return kRegistry;
}

const HwStructure& HwSession::find(const std::string& name) {
  for (const HwStructure& s : registry()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("HwSession: unknown structure '" + name + "'");
}

HwSession::HwSession(const std::string& structure, HwOptions options,
                     CheckOptions check)
    : structure_(find(structure)),
      options_(options),
      check_(check) {}

const HwResult& HwSession::run() & {
  if (result_.has_value()) return *result_;

  HwResult result;
  result.structure = structure_.name;
  result.stamp = options_.stamp;
  result.clock = options_.clock;
  result.reclaim = options_.reclaim;
  result.expect_linearizable = structure_.expect_linearizable;

  const bool lin_mode = options_.stamp == StampMode::kLinPoint;
  const bool tsc = options_.clock == ClockMode::kTsc;
  const CaptureClock clock =
      tsc ? CaptureClock::kTsc : CaptureClock::kTicket;
  if (tsc) {
    // One calibration per session: the skew bound ε below widens every
    // recovered interval before rank compression.
    result.calibration =
        util::calibrate_tsc(options_.threads, 32, options_.pin_threads);
  }
  const std::size_t bursts = std::max<std::size_t>(1, options_.bursts);
  Session checker(make_spec(structure_.spec_kind), check_);

  std::uint64_t total_slack = 0;
  std::size_t completed = 0;
  for (std::size_t burst = 0; burst < bursts; ++burst) {
    const std::uint64_t seed =
        options_.seed + 0xD1B54A32D192ED03ULL * burst;
    const auto capture_start = Clock::now();
    std::vector<OpRecord> records =
        lin_mode
            ? (tsc ? capture_dispatch<lockfree::TscStamp>(structure_,
                                                          options_, clock,
                                                          seed)
                   : capture_dispatch<lockfree::TicketStamp>(
                         structure_, options_, clock, seed))
            : capture_dispatch<lockfree::NoStamp>(structure_, options_,
                                                  clock, seed);
    result.capture_ms += ms_since(capture_start);
    if (tsc) compress_tsc_ranks(records, result.calibration.epsilon);

    // Effective intervals: the lin bracket when complete, else the call
    // boundary. Both contain the true linearization point, so the
    // checker's verdict is sound in either mode.
    std::vector<Operation> ops;
    ops.reserve(records.size());
    for (const OpRecord& record : records) {
      Operation op;
      op.thread = record.thread;
      op.op = record.op;
      op.has_arg = record.has_arg;
      op.arg = record.arg;
      op.has_ret = record.has_ret;
      op.ret = record.ret;
      const bool bracketed =
          lin_mode && record.lin.has_pre && record.lin.has_post;
      op.invoke = bracketed ? record.lin.pre : record.invoke;
      op.response = bracketed ? record.lin.post : record.response;
      if (bracketed) ++result.stamped_ops;

      const std::uint64_t boundary = record.response - record.invoke - 1;
      const std::uint64_t effective = op.response - op.invoke - 1;
      result.boundary_slack.push_back(boundary);
      result.interval_slack.push_back(effective);
      result.boundary_max_slack =
          std::max(result.boundary_max_slack, boundary);
      result.max_slack = std::max(result.max_slack, effective);
      result.boundary_mean_slack += static_cast<double>(boundary);
      total_slack += effective;
      ++completed;
      ops.push_back(op);
    }
    result.total_ops += records.size();
    std::sort(ops.begin(), ops.end(),
              [](const Operation& a, const Operation& b) {
                return a.invoke < b.invoke;
              });
    History history(std::move(ops));

    if (!options_.check_history) {
      // Overhead-measurement mode: record, don't check. lin stays at
      // its default (kUnknown) and as_expected() is meaningless.
      if (burst + 1 == bursts) result.history = std::move(history);
      continue;
    }

    const auto check_start = Clock::now();
    LinResult lin = checker.check(history);
    result.check_ms += ms_since(check_start);

    const bool violating = lin.verdict == LinVerdict::kNotLinearizable;
    if (violating || burst + 1 == bursts) {
      result.history = std::move(history);
      result.lin = std::move(lin);
    }
    if (violating) break;  // first violating round is the verdict
  }

  if (completed > 0) {
    result.mean_slack =
        static_cast<double>(total_slack) / static_cast<double>(completed);
    result.boundary_mean_slack /= static_cast<double>(completed);
  }
  result.median_slack = median_of(result.interval_slack);
  result.boundary_median_slack = median_of(result.boundary_slack);

  if (result.lin.verdict == LinVerdict::kNotLinearizable) {
    result.witness = result.history;
    const bool can_minimize =
        options_.minimize_witness && minimizable_spec(structure_.spec_kind);
    if (can_minimize) {
      const auto minimize_start = Clock::now();
      result.witness = minimize_witness(
          result.history, structure_.spec_kind, check_,
          options_.minimize_max_probes, &result.witness_minimized);
      result.check_ms += ms_since(minimize_start);
    }
  }

  result_ = std::move(result);
  return *result_;
}

HwResult HwSession::run() && {
  run();  // the lvalue overload, on *this
  return std::move(*result_);
}

const HwResult& HwSession::result() const& {
  if (!result_.has_value()) {
    throw std::logic_error("HwSession::result: run() has not been called");
  }
  return *result_;
}

HwResult HwSession::result() && {
  if (!result_.has_value()) {
    throw std::logic_error("HwSession::result: run() has not been called");
  }
  return std::move(*result_);
}

double hw_uninstrumented_burst_ms(const std::string& structure,
                                  const HwOptions& options,
                                  std::uint64_t seed) {
  const HwStructure& s = HwSession::find(structure);
  const auto start = Clock::now();
  capture_dispatch<lockfree::NoStamp>(s, options, CaptureClock::kNone, seed);
  return ms_since(start);
}

// --------------------------------------------------------------------------
// Deprecated surface.

const std::vector<std::string>& hw_structures() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const HwStructure& s : HwSession::registry()) {
      if (s.expect_linearizable) names.push_back(s.name);
    }
    return names;
  }();
  return kNames;
}

HwCaptureResult hw_capture_run(const std::string& structure,
                               const HwCaptureOptions& options,
                               const CheckOptions& check) {
  HwOptions hw;
  hw.threads = options.threads;
  hw.ops_per_thread = options.ops_per_thread;
  hw.seed = options.seed;
  hw.bursts = 1;
  hw.stamp = StampMode::kCallBoundary;
  hw.minimize_witness = false;
  HwSession session(structure, hw, check);
  const HwResult& r = session.run();
  HwCaptureResult out;
  out.structure = r.structure;
  out.history = r.history;
  out.lin = r.lin;
  out.interval_slack = r.interval_slack;
  out.max_slack = r.max_slack;
  out.mean_slack = r.mean_slack;
  return out;
}

}  // namespace pwf::check
