#include "check/hw_capture.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/session.hpp"
#include "check/spec.hpp"
#include "lockfree/counter.hpp"
#include "lockfree/ebr.hpp"
#include "lockfree/harris_list.hpp"
#include "lockfree/hash_map.hpp"
#include "lockfree/ms_queue.hpp"
#include "lockfree/treiber_stack.hpp"
#include "util/rng.hpp"

namespace pwf::check {

namespace {

/// Per-thread event buffer; tickets from one shared atomic give the
/// global order. No allocation races: each thread appends locally and
/// buffers are merged after join.
class TicketLog {
 public:
  explicit TicketLog(std::atomic<std::uint64_t>& ticket) : ticket_(ticket) {}

  void invoke(std::uint32_t tid, OpCode op, bool has_arg, Value arg) {
    events_.push_back({ticket_.fetch_add(1, std::memory_order_acq_rel), tid,
                       true, op, has_arg, arg});
  }
  void respond(std::uint32_t tid, OpCode op, bool has_ret, Value ret) {
    events_.push_back({ticket_.fetch_add(1, std::memory_order_acq_rel), tid,
                       false, op, has_ret, ret});
  }

  std::vector<OpEvent> take() { return std::move(events_); }

 private:
  std::atomic<std::uint64_t>& ticket_;
  std::vector<OpEvent> events_;
};

/// The per-op body for one structure kind; returns the spec kind.
template <typename Body>
HwCaptureResult run_burst(const std::string& structure,
                          const std::string& spec_kind,
                          const HwCaptureOptions& options,
                          const CheckOptions& check, Body&& body) {
  std::atomic<std::uint64_t> ticket{0};
  std::vector<std::vector<OpEvent>> buffers(options.threads);
  std::vector<std::thread> threads;
  threads.reserve(options.threads);
  for (std::size_t t = 0; t < options.threads; ++t) {
    threads.emplace_back([&, t] {
      TicketLog log(ticket);
      Xoshiro256pp rng(options.seed + 0x9E3779B97F4A7C15ULL * (t + 1));
      body(static_cast<std::uint32_t>(t), log, rng);
      buffers[t] = log.take();
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<OpEvent> events;
  for (auto& buffer : buffers) {
    events.insert(events.end(), buffer.begin(), buffer.end());
  }
  HwCaptureResult result;
  result.structure = structure;
  result.history = History::from_events(std::move(events));

  // Interval slack: each ticket inside [invoke, response] belongs to some
  // other operation's stamp, so response − invoke − 1 counts the foreign
  // events the capture interval was widened across.
  std::uint64_t total_slack = 0;
  std::size_t completed = 0;
  for (const Operation& op : result.history.operations()) {
    if (!op.completed()) {
      result.interval_slack.push_back(HwCaptureResult::kPendingSlack);
      continue;
    }
    const std::uint64_t slack = op.response - op.invoke - 1;
    result.interval_slack.push_back(slack);
    result.max_slack = std::max(result.max_slack, slack);
    total_slack += slack;
    ++completed;
  }
  if (completed > 0) {
    result.mean_slack =
        static_cast<double>(total_slack) / static_cast<double>(completed);
  }

  // Session partitions multi-object captures (the set structures) per
  // key, which is what keeps the large-burst captures tractable.
  result.lin = Session(make_spec(spec_kind), check).check(result.history);
  return result;
}

constexpr Value unique_value(std::uint32_t tid, std::size_t i) {
  return (static_cast<Value>(tid + 1) << 32) | static_cast<Value>(i);
}

}  // namespace

const std::vector<std::string>& hw_structures() {
  static const std::vector<std::string> kNames = {
      "treiber-stack", "ms-queue",    "harris-list",
      "hash-set",      "cas-counter", "faa-counter"};
  return kNames;
}

HwCaptureResult hw_capture_run(const std::string& structure,
                               const HwCaptureOptions& options,
                               const CheckOptions& check) {
  constexpr Value kKeySpace = 8;  // small key range: operations collide

  if (structure == "treiber-stack") {
    lockfree::EbrDomain domain;
    lockfree::TreiberStack<Value> stack(domain);
    return run_burst(structure, "stack", options, check,
                     [&](std::uint32_t tid, TicketLog& log, Xoshiro256pp& rng) {
                       lockfree::EbrThreadHandle handle(domain);
                       for (std::size_t i = 0; i < options.ops_per_thread; ++i) {
                         if (rng() % 2 == 0) {
                           const Value v = unique_value(tid, i);
                           log.invoke(tid, OpCode::kPush, true, v);
                           stack.push(handle, v);
                           log.respond(tid, OpCode::kPush, false, 0);
                         } else {
                           log.invoke(tid, OpCode::kPop, false, 0);
                           const auto popped = stack.pop(handle);
                           log.respond(tid, OpCode::kPop, popped.has_value(),
                                       popped.value_or(0));
                         }
                       }
                     });
  }
  if (structure == "ms-queue") {
    lockfree::EbrDomain domain;
    lockfree::MsQueue<Value> queue(domain);
    return run_burst(structure, "queue", options, check,
                     [&](std::uint32_t tid, TicketLog& log, Xoshiro256pp& rng) {
                       lockfree::EbrThreadHandle handle(domain);
                       for (std::size_t i = 0; i < options.ops_per_thread; ++i) {
                         if (rng() % 2 == 0) {
                           const Value v = unique_value(tid, i);
                           log.invoke(tid, OpCode::kEnqueue, true, v);
                           queue.enqueue(handle, v);
                           log.respond(tid, OpCode::kEnqueue, false, 0);
                         } else {
                           log.invoke(tid, OpCode::kDequeue, false, 0);
                           const auto out = queue.dequeue(handle);
                           log.respond(tid, OpCode::kDequeue, out.has_value(),
                                       out.value_or(0));
                         }
                       }
                     });
  }
  if (structure == "harris-list" || structure == "hash-set") {
    lockfree::EbrDomain domain;
    std::unique_ptr<lockfree::HarrisList<Value>> list;
    std::unique_ptr<lockfree::HashSet<Value>> set;
    if (structure == "harris-list") {
      list = std::make_unique<lockfree::HarrisList<Value>>(domain);
    } else {
      set = std::make_unique<lockfree::HashSet<Value>>(domain, 4);
    }
    return run_burst(
        structure, "set", options, check,
        [&](std::uint32_t tid, TicketLog& log, Xoshiro256pp& rng) {
          lockfree::EbrThreadHandle handle(domain);
          for (std::size_t i = 0; i < options.ops_per_thread; ++i) {
            const Value key = 1 + rng() % kKeySpace;
            const std::uint64_t roll = rng() % 3;
            const OpCode op = roll == 0   ? OpCode::kInsert
                              : roll == 1 ? OpCode::kErase
                                          : OpCode::kContains;
            log.invoke(tid, op, true, key);
            bool ok = false;
            if (list) {
              ok = op == OpCode::kInsert   ? list->insert(handle, key)
                   : op == OpCode::kErase  ? list->erase(handle, key)
                                           : list->contains(handle, key);
            } else {
              ok = op == OpCode::kInsert   ? set->insert(handle, key)
                   : op == OpCode::kErase  ? set->erase(handle, key)
                                           : set->contains(handle, key);
            }
            log.respond(tid, op, true, ok ? 1 : 0);
          }
        });
  }
  if (structure == "cas-counter" || structure == "faa-counter") {
    lockfree::CasCounter cas_counter;
    lockfree::FetchAddCounter faa_counter;
    const bool use_cas = structure == "cas-counter";
    return run_burst(structure, "counter", options, check,
                     [&](std::uint32_t tid, TicketLog& log, Xoshiro256pp&) {
                       for (std::size_t i = 0; i < options.ops_per_thread; ++i) {
                         log.invoke(tid, OpCode::kFetchInc, false, 0);
                         const std::uint64_t before =
                             use_cas ? cas_counter.fetch_inc().value
                                     : faa_counter.fetch_inc().value;
                         log.respond(tid, OpCode::kFetchInc, true, before);
                       }
                     });
  }
  throw std::invalid_argument("hw_capture_run: unknown structure '" +
                              structure + "'");
}

}  // namespace pwf::check
