// Scaling of the linearizability checker (src/check): the same
// multi-object sharded-counter history is checked by three engines —
// the legacy whole-history search (pre-refactor baseline, pruning off),
// the pruned whole-history search, and the Session default (partitioned
// per counter, shards fanned across the worker pool) — at growing
// history sizes. The point of the experiment is the scale gap: at ~10^5
// events the legacy engine exhausts its time budget while the
// partitioned + pruned Session verdict lands in seconds.
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "check/history.hpp"
#include "check/session.hpp"
#include "check/workloads.hpp"
#include "core/scheduler.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

// Engine encoding in trial params.
constexpr double kEngineLegacy = 0.0;   // whole history, pruning off
constexpr double kEnginePruned = 1.0;   // whole history, interval pruning
constexpr double kEngineSharded = 2.0;  // partitioned per object, pooled

// The legacy engine gets a short leash — the experiment demonstrates it
// timing out at scale, and there is no value in burning a minute to do
// so. The modern engines get the acceptance bound itself.
constexpr double kLegacyBudgetMs = 5'000.0;
constexpr double kLegacyBudgetQuickMs = 250.0;
constexpr double kModernBudgetMs = 60'000.0;

const char* engine_name(double e) {
  if (e == kEngineLegacy) return "legacy-whole";
  if (e == kEnginePruned) return "pruned-whole";
  return "sharded";
}

class CheckScaling final : public exp::Experiment {
 public:
  std::string name() const override { return "check_scaling"; }
  std::string artifact() const override {
    return "src/check scaling: legacy vs pruned vs partitioned+sharded "
           "engines on multi-object histories up to ~10^5 events";
  }
  std::string claim() const override {
    return "Claim: interval pruning plus per-object partitioning checks a "
           ">= 10^5-event multi-object history in well under 60 s, where "
           "the whole-history baseline checker exhausts its time budget.";
  }
  std::uint64_t default_seed() const override { return 20140722; }

  // Wall-clock throughput is the metric, and the sharded engine runs its
  // own worker pool — keep the trial pool out of the way.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<std::uint64_t> step_grid =
        options.quick ? std::vector<std::uint64_t>{2'000, 40'000}
                      : std::vector<std::uint64_t>{20'000, 160'000};
    std::vector<Trial> grid;
    for (std::size_t s = 0; s < step_grid.size(); ++s) {
      for (const double engine :
           {kEngineLegacy, kEnginePruned, kEngineSharded}) {
        Trial t;
        t.id = std::string(engine_name(engine)) + "/" +
               std::to_string(step_grid[s]) + "-steps";
        t.params = {{"steps", static_cast<double>(step_grid[s])},
                    {"engine", engine}};
        // One seed per size, shared by the engines: they must all judge
        // the *same* history for the comparison to mean anything.
        t.seed = exp::derive_seed(base, s);
        grid.push_back(std::move(t));
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto steps = static_cast<std::uint64_t>(trial.params.at("steps"));
    const double engine = trial.params.at("engine");
    const std::size_t n = 6;

    // One deterministic capture per (seed, steps); the engines differ
    // only in CheckOptions, so they all judge the same history.
    const check::Workload& workload = check::find_workload("sharded-counter");
    check::SimTraceRecorder events;
    auto sim = workload.build(n, trial.seed,
                              std::make_unique<core::UniformScheduler>(),
                              &events);
    sim->run(steps);
    const check::History history = events.history();

    check::CheckOptions opts;
    opts.max_nodes = 1'000'000'000ULL;  // time-bounded, not node-bounded
    if (engine == kEngineLegacy) {
      opts.pruning = false;
      opts.partition = check::PartitionMode::kWhole;
      opts.time_budget_ms =
          options.quick ? kLegacyBudgetQuickMs : kLegacyBudgetMs;
    } else if (engine == kEnginePruned) {
      opts.partition = check::PartitionMode::kWhole;
      opts.time_budget_ms = kModernBudgetMs;
    } else {
      opts.partition = check::PartitionMode::kByObject;
      opts.shards = 0;  // hardware concurrency
      opts.time_budget_ms = kModernBudgetMs;
    }

    const check::Session session(workload.make_spec(), opts);
    const auto t0 = std::chrono::steady_clock::now();
    const check::LinResult lin = session.check(history);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const auto num_events = static_cast<double>(history.num_events());
    const double events_per_sec =
        wall_ms > 0.0 ? num_events / (wall_ms / 1000.0) : 0.0;
    return {{"events", num_events},
            {"operations", static_cast<double>(history.size())},
            {"wall_ms", wall_ms},
            {"events_per_sec", events_per_sec},
            {"linearizable", lin.ok() ? 1.0 : 0.0},
            {"unknown", lin.verdict == check::LinVerdict::kUnknown ? 1.0 : 0.0},
            {"timed_out", lin.timed_out ? 1.0 : 0.0},
            {"parts", static_cast<double>(lin.parts)},
            {"nodes", static_cast<double>(lin.nodes)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    Table table({"engine / size", "events", "verdict", "wall ms", "events/s",
                 "parts", "nodes"});
    bool agree = true;          // no engine contradicts linearizability
    bool sharded_ok = false;    // largest size: sharded verdict in budget
    bool legacy_gave_up = false;  // largest size: baseline hit its budget
    double largest_events = 0.0;

    for (const TrialResult& r : results) {
      largest_events = std::max(largest_events, r.metrics.at("events"));
    }
    for (const TrialResult& r : results) {
      const Metrics& m = r.metrics;
      const bool lin = exp::flag(m.at("linearizable"));
      const bool unknown = exp::flag(m.at("unknown"));
      const double engine = r.trial.params.at("engine");
      table.add_row({r.trial.id, fmt(m.at("events"), 0),
                     lin ? "LINEARIZABLE" : (unknown ? "unknown" : "VIOLATION"),
                     fmt(m.at("wall_ms"), 1), fmt(m.at("events_per_sec"), 0),
                     fmt(m.at("parts"), 0), fmt(m.at("nodes"), 0)});
      // A completed search must say linearizable: the stock structure is
      // correct, and the engines may only differ in *finishing*.
      if (!unknown) agree = agree && lin;
      const bool at_largest = m.at("events") == largest_events;
      if (at_largest && engine == kEngineSharded) {
        sharded_ok = lin && m.at("wall_ms") < kModernBudgetMs;
      }
      if (at_largest && engine == kEngineLegacy) {
        legacy_gave_up = unknown && exp::flag(m.at("timed_out"));
      }
    }
    table.print(os);

    // The 10^5-event bar belongs to the full-size run; --quick keeps the
    // same shape on a CI-sized history.
    const double event_bar = options.quick ? 10'000.0 : 100'000.0;
    Verdict v;
    v.reproduced = agree && sharded_ok && legacy_gave_up &&
                   largest_events >= event_bar;
    v.detail =
        "partitioned+pruned Session checks the largest multi-object history "
        "inside the budget while the legacy whole-history engine times out";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<CheckScaling>());

}  // namespace
