// Lemma 2 — there is an *unbounded* lock-free algorithm (Algorithm 1) that
// is not wait-free with high probability, even under the uniform
// stochastic scheduler: the boundedness hypothesis of Theorem 3 is
// necessary.
//
// Experiment: run Algorithm 1 under the uniform scheduler for several n
// and seeds; report the share of completions taken by the single dominant
// process and how many processes are starving at the end. Contrast with
// bounded scan-validate under identical conditions.
#include <algorithm>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

class Lemma2UnboundedStarvation final : public exp::Experiment {
 public:
  std::string name() const override { return "lemma2_unbounded_starvation"; }
  std::string artifact() const override {
    return "Lemma 2: an unbounded lock-free algorithm is not practically "
           "wait-free";
  }
  std::string claim() const override {
    return "Claim: under the uniform scheduler, Algorithm 1's penalty loops "
           "grow without bound, so one process monopolizes progress w.h.p.; "
           "the bounded scan-validate control shares progress fairly.";
  }
  std::uint64_t default_seed() const override { return 42; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t n : {4, 8, 16}) {
      for (int unbounded : {1, 0}) {
        Trial t;
        t.id = std::string(unbounded ? "Algorithm 1" : "scan-validate") +
               " n=" + fmt(n);
        t.params = {{"n", static_cast<double>(n)},
                    {"unbounded", static_cast<double>(unbounded)}};
        t.seed = base + n;
        grid.push_back(std::move(t));
      }
    }
    (void)options;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const bool unbounded = exp::flag(trial.params.at("unbounded"));
    // Quick mode keeps steps/4 (not /10): Algorithm 1's monopolist needs
    // time to pull ahead before the winner-share check is meaningful.
    const std::uint64_t steps = options.horizon(3'000'000, 750'000);
    Simulation::Options opts;
    opts.num_registers = unbounded ? UnboundedLockFree::registers_required()
                                   : ScuAlgorithm::registers_required(n, 1);
    opts.seed = trial.seed;
    Simulation sim(n,
                   unbounded ? UnboundedLockFree::factory()
                             : scan_validate_factory(),
                   std::make_unique<UniformScheduler>(), opts);
    ProgressTracker tracker(n);
    sim.set_observer(&tracker);
    sim.run(steps);

    std::uint64_t total = 0, best = 0;
    for (std::size_t p = 0; p < n; ++p) {
      total += tracker.completions(p);
      best = std::max(best, tracker.completions(p));
    }
    return {{"total", static_cast<double>(total)},
            {"winner_share",
             total ? static_cast<double>(best) / static_cast<double>(total)
                   : 0.0},
            {"starving", static_cast<double>(tracker.starving(steps / 2)
                                                 .size())}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    Table table({"n", "algorithm", "completions", "winner share %",
                 "starving processes"});
    bool reproduced = true;
    for (const TrialResult& r : results) {
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const bool unbounded = exp::flag(r.trial.params.at("unbounded"));
      const Metrics& m = r.metrics;
      table.add_row({fmt(n),
                     unbounded ? "Algorithm 1 (unbounded)"
                               : "scan-validate (bounded)",
                     fmt(m.at("total"), 0),
                     fmt(100.0 * m.at("winner_share"), 1),
                     fmt(m.at("starving"), 0) + " of " + fmt(n)});
      if (unbounded) {
        reproduced = reproduced && m.at("winner_share") > 0.9 &&
                     m.at("starving") >= static_cast<double>(n - 2);
      } else {
        reproduced = reproduced && m.at("starving") < 0.5 &&
                     m.at("winner_share") < 2.5 / static_cast<double>(n);
      }
    }
    table.print(os);

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "Algorithm 1: one winner, everyone else starves (minimal progress "
        "only); the bounded control gives everyone ~1/n of completions";
    return v;
  }
};

const exp::RegisterExperiment reg(
    std::make_unique<Lemma2UnboundedStarvation>());

}  // namespace
