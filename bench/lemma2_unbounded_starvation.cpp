// Lemma 2 — there is an *unbounded* lock-free algorithm (Algorithm 1) that
// is not wait-free with high probability, even under the uniform
// stochastic scheduler: the boundedness hypothesis of Theorem 3 is
// necessary.
//
// Experiment: run Algorithm 1 under the uniform scheduler for several n
// and seeds; report the share of completions taken by the single dominant
// process and how many processes are starving at the end. Contrast with
// bounded scan-validate under identical conditions.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Outcome {
  double winner_share = 0.0;
  std::size_t starving = 0;
  std::uint64_t total = 0;
};

Outcome run(const StepMachineFactory& factory, std::size_t registers,
            std::size_t n, std::uint64_t steps, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = registers;
  opts.seed = seed;
  Simulation sim(n, factory, std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(n);
  sim.set_observer(&tracker);
  sim.run(steps);
  Outcome out;
  std::uint64_t best = 0;
  for (std::size_t p = 0; p < n; ++p) {
    out.total += tracker.completions(p);
    best = std::max(best, tracker.completions(p));
  }
  out.winner_share =
      out.total ? static_cast<double>(best) / static_cast<double>(out.total)
                : 0.0;
  out.starving = tracker.starving(steps / 2).size();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Lemma 2: an unbounded lock-free algorithm is not practically "
      "wait-free",
      "Claim: under the uniform scheduler, Algorithm 1's penalty loops grow "
      "without bound, so one process monopolizes progress w.h.p.; the "
      "bounded scan-validate control shares progress fairly.");
  constexpr std::uint64_t kSteps = 3'000'000;
  bench::print_seed(42);

  Table table({"n", "algorithm", "completions", "winner share %",
               "starving processes"});
  bool reproduced = true;
  for (std::size_t n : {4, 8, 16}) {
    const Outcome unbounded =
        run(UnboundedLockFree::factory(),
            UnboundedLockFree::registers_required(), n, kSteps, 42 + n);
    const Outcome bounded =
        run(scan_validate_factory(), ScuAlgorithm::registers_required(n, 1), n,
            kSteps, 42 + n);
    table.add_row({fmt(n), "Algorithm 1 (unbounded)", fmt(unbounded.total),
                   fmt(100.0 * unbounded.winner_share, 1),
                   fmt(unbounded.starving) + " of " + fmt(n)});
    table.add_row({fmt(n), "scan-validate (bounded)", fmt(bounded.total),
                   fmt(100.0 * bounded.winner_share, 1),
                   fmt(bounded.starving) + " of " + fmt(n)});
    reproduced = reproduced && unbounded.winner_share > 0.9 &&
                 unbounded.starving >= n - 2 && bounded.starving == 0 &&
                 bounded.winner_share < 2.5 / static_cast<double>(n);
  }
  table.print(std::cout);

  bench::print_verdict(
      reproduced,
      "Algorithm 1: one winner, everyone else starves (minimal progress "
      "only); the bounded control gives everyone ~1/n of completions");
  return reproduced ? 0 : 1;
}
