// waitfree_overhead: what the wait-free wrapper costs and what it buys
// (src/waitfree, DESIGN.md §"Wait-free universal construction").
//
// The paper's thesis is that lock-free algorithms are practically
// wait-free under stochastic schedulers; the Kogan–Petrank-style
// fast-path/slow-path transformation is the contrapositive probe: if the
// thesis holds, the wait-free machinery (announce, scan, help) is almost
// never exercised, so its cost must be near zero on the common path —
// and its benefit must appear exactly where the thesis's assumptions
// break (adversarial scheduling).
//
// Four measurement families, one telemetry shape (HelpStats):
//
//   sim helping-rate  — wrapped-counter step machines under uniform /
//     Zipf / starving-adversary schedulers: slow-path entries per 10^6
//     completed ops vs scheduler skew. Verdict: uniform keeps the rate
//     below 0.1% of ops while the adversary drives it orders of
//     magnitude higher.
//   sim overhead      — wrapped counter vs the raw Algorithm-5 fetch-inc
//     machine, same scheduler and seed: shared-memory steps per
//     completed op (deterministic) and wall steps/sec.
//   sim rescue        — the starvation experiment: a victim scheduled
//     once in 64 steps completes ops through helping but starves
//     (in-flight own steps grow unboundedly) when helping is compiled
//     out — the nohelp mutant caught violating the wait-free bound.
//   native            — real threads: wrapped vs raw CAS-loop counter
//     ops/sec (the committed wrapped-over-raw ratio), lin-point-stamped
//     HwSession captures of wf-counter / wf-stack checked linearizable,
//     and the stall-injection rescue (an announced descriptor committed
//     by routine foreign traffic).
//
// scripts/bench_waitfree.sh serializes the sweep into
// BENCH_waitfree.json, the committed baseline.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "check/hw_capture.hpp"
#include "check/lin_check.hpp"
#include "core/algorithms.hpp"
#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "lockfree/counter.hpp"
#include "lockfree/ebr.hpp"
#include "util/table.hpp"
#include "waitfree/object.hpp"
#include "waitfree/sim_object.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;
using pwf::waitfree::HelpStats;
using pwf::waitfree::SimWfConfig;
using pwf::waitfree::SimWfKind;
using pwf::waitfree::WaitFreeSim;

enum class Kind : int {
  kSimHelping = 0,
  kSimOverhead = 1,
  kSimRescue = 2,
  kNativeOverhead = 3,
  kNativeLin = 4,
};

// Scheduler skew ladder for the helping-rate sweep.
enum class Sched : int {
  kUniform = 0,
  kZipf15 = 1,
  kZipf25 = 2,
  kStarver = 3,  // adversary: pid 0 scheduled once in 64 steps
};
constexpr const char* kSchedLabels[] = {"uniform", "zipf-1.5", "zipf-2.5",
                                        "starver"};

std::unique_ptr<core::Scheduler> make_sched(Sched s, std::size_t n) {
  switch (s) {
    case Sched::kUniform:
      return std::make_unique<core::UniformScheduler>();
    case Sched::kZipf15:
      return std::make_unique<core::WeightedScheduler>(
          core::make_zipf_scheduler(n, 1.5));
    case Sched::kZipf25:
      return std::make_unique<core::WeightedScheduler>(
          core::make_zipf_scheduler(n, 2.5));
    case Sched::kStarver:
      return std::make_unique<core::AdversarialScheduler>(
          [](std::uint64_t tau, std::span<const std::size_t> active) {
            if (active.size() == 1 || tau % 64 == 0) return active[0];
            return active[1 + tau % (active.size() - 1)];
          },
          "starver");
  }
  return nullptr;
}

/// Runs `horizon` steps of wrapped-counter machines under `sched`,
/// returning the per-process machines' merged stats plus per-victim
/// detail (pid 0 is the starver's victim).
struct SimRun {
  HelpStats merged;
  HelpStats victim;
  std::uint64_t victim_max_own_steps = 0;
  std::uint64_t victim_steps_in_flight = 0;
  std::uint64_t completions = 0;
  double steps_per_sec = 0.0;
};

SimRun run_sim(Sched sched, std::size_t n, std::uint64_t seed,
               std::uint64_t horizon, const SimWfConfig& cfg) {
  auto tap = std::make_shared<std::vector<const WaitFreeSim*>>();
  core::StepMachineFactory factory = [cfg, tap](std::size_t pid,
                                                std::size_t num) {
    auto machine = std::make_unique<WaitFreeSim>(pid, num, cfg);
    if (pid == tap->size()) tap->push_back(machine.get());
    return machine;
  };
  core::Simulation::Options opt;
  opt.num_registers = WaitFreeSim::registers_required(n, cfg);
  opt.seed = seed;
  opt.initial_values = WaitFreeSim::initial_values(n, cfg);
  core::Simulation sim(n, std::move(factory), make_sched(sched, n), opt);

  const auto t0 = std::chrono::steady_clock::now();
  sim.run(horizon);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SimRun out;
  for (const WaitFreeSim* m : *tap) out.merged += m->stats();
  out.victim = (*tap)[0]->stats();
  out.victim_max_own_steps = (*tap)[0]->max_own_steps();
  out.victim_steps_in_flight = (*tap)[0]->steps_in_flight();
  out.completions = sim.report().completions;
  out.steps_per_sec = static_cast<double>(horizon) / sec;
  return out;
}

class WaitfreeOverhead final : public exp::Experiment {
 public:
  std::string name() const override { return "waitfree_overhead"; }
  std::string artifact() const override {
    return "wait-free universal construction: helping rate vs scheduler "
           "skew, wrapped-vs-raw overhead, starvation rescue "
           "(src/waitfree)";
  }
  std::string claim() const override {
    return "Claim: under uniform stochastic scheduling the slow path is "
           "entered for < 0.1% of ops (the lock-free fast path is "
           "practically wait-free), an adversarial starver drives its "
           "victim's slow-path rate >= 100x higher, helping bounds the victim's "
           "own-step cost where the nohelp mutant starves it without "
           "bound, and the wrapped structures stay linearizable under "
           "lin-point-stamped hardware capture.";
  }
  std::uint64_t default_seed() const override { return 20140811; }

  // Wall-clock throughput and real-thread captures: run alone.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    std::uint64_t idx = 0;
    auto add = [&](std::string id, Metrics params) {
      Trial t;
      t.id = std::move(id);
      t.params = std::move(params);
      t.seed = exp::derive_seed(base, idx++);
      grid.push_back(std::move(t));
    };

    const std::vector<std::size_t> ns =
        options.quick ? std::vector<std::size_t>{4}
                      : std::vector<std::size_t>{4, 16};
    for (int s = 0; s <= static_cast<int>(Sched::kStarver); ++s) {
      for (const std::size_t n : ns) {
        add(std::string("helping ") + kSchedLabels[s] +
                " n=" + std::to_string(n),
            {{"kind", static_cast<double>(Kind::kSimHelping)},
             {"sched", static_cast<double>(s)},
             {"n", static_cast<double>(n)}});
      }
    }
    add("sim wrapped-vs-raw n=4",
        {{"kind", static_cast<double>(Kind::kSimOverhead)},
         {"n", 4.0}});
    add("sim rescue n=3",
        {{"kind", static_cast<double>(Kind::kSimRescue)}, {"n", 3.0}});
    add("native wrapped-vs-raw",
        {{"kind", static_cast<double>(Kind::kNativeOverhead)}});
    add("native lin-point captures",
        {{"kind", static_cast<double>(Kind::kNativeLin)}});
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    switch (static_cast<Kind>(static_cast<int>(trial.params.at("kind")))) {
      case Kind::kSimHelping:
        return run_sim_helping(trial, options);
      case Kind::kSimOverhead:
        return run_sim_overhead(trial, options);
      case Kind::kSimRescue:
        return run_sim_rescue(trial, options);
      case Kind::kNativeOverhead:
        return run_native_overhead(trial, options);
      case Kind::kNativeLin:
        return run_native_lin(trial, options);
    }
    return {};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options,
                  std::ostream& os) const override;

 private:
  static SimWfConfig sim_config(std::size_t n) {
    SimWfConfig cfg;
    cfg.kind = SimWfKind::kCounter;
    // MAX_FAILURES must out-last the CAS-loss streaks a *stochastic*
    // scheduler produces, and those lengthen with contention: the
    // per-attempt loss probability measured on this grid is ~0.65 at
    // n = 4 uniform and ~0.85 at n = 16, so a fixed budget of 16 leaks
    // ~2e-3 of ops (n = 4) and 32 leaks ~6e-3 (n = 16) onto the slow
    // path. A budget linear in n keeps the geometric tail below the
    // 0.1% claim with margin at both grid sizes, while a starved victim
    // (which loses *every* attempt) still exhausts it in O(n) of its
    // own ops.
    cfg.max_failures = std::max<std::uint32_t>(
        32, 8 * static_cast<std::uint32_t>(n));
    cfg.help_delay = 4;
    // The starver pushes every victim op (and many contender ops) into
    // the slow path; size the arena for the full horizon.
    cfg.max_descs_per_process = 1 << 15;
    return cfg;
  }

  Metrics run_sim_helping(const Trial& trial,
                          const RunOptions& options) const {
    const auto sched =
        static_cast<Sched>(static_cast<int>(trial.params.at("sched")));
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const std::uint64_t horizon = options.horizon(1'000'000, 100'000);
    const SimRun r = run_sim(sched, n, trial.seed, horizon, sim_config(n));
    Metrics m = r.merged.metrics("wf");
    m["completions"] = static_cast<double>(r.completions);
    m["steps_per_sec"] = r.steps_per_sec;
    m["victim_slow_per_mop"] = r.victim.slow_per_mop();
    m["victim_ops"] = static_cast<double>(r.victim.ops);
    return m;
  }

  Metrics run_sim_overhead(const Trial& trial,
                           const RunOptions& options) const {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const std::uint64_t horizon = options.horizon(1'000'000, 100'000);
    const SimRun wrapped =
        run_sim(Sched::kUniform, n, trial.seed, horizon, sim_config(n));

    core::Simulation::Options opt;
    opt.num_registers = core::FetchAndIncrement::registers_required();
    opt.seed = trial.seed;
    core::Simulation raw(n, core::FetchAndIncrement::factory(),
                         std::make_unique<core::UniformScheduler>(), opt);
    const auto t0 = std::chrono::steady_clock::now();
    raw.run(horizon);
    const double raw_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const double wrapped_spo =
        static_cast<double>(horizon) /
        static_cast<double>(std::max<std::uint64_t>(wrapped.completions, 1));
    const double raw_spo =
        static_cast<double>(horizon) /
        static_cast<double>(
            std::max<std::uint64_t>(raw.report().completions, 1));
    const double raw_sps = static_cast<double>(horizon) / raw_sec;
    return {{"wrapped_steps_per_op", wrapped_spo},
            {"raw_steps_per_op", raw_spo},
            {"steps_per_op_overhead", wrapped_spo / raw_spo},
            {"wrapped_steps_per_sec", wrapped.steps_per_sec},
            {"raw_steps_per_sec", raw_sps},
            {"steps_per_sec_ratio", wrapped.steps_per_sec / raw_sps},
            {"wrapped_slow_per_mop", wrapped.merged.slow_per_mop()}};
  }

  Metrics run_sim_rescue(const Trial& trial,
                         const RunOptions& options) const {
    (void)trial;
    const std::size_t n = 3;
    const std::uint64_t horizon = options.horizon(200'000, 50'000);
    auto run = [&](bool helping) {
      SimWfConfig cfg = sim_config(n);
      cfg.max_failures = 2;  // announce quickly: the slow path is the point
      cfg.help_delay = 2;
      cfg.helping = helping;
      core::SharedMemory mem(WaitFreeSim::registers_required(n, cfg));
      for (const auto& [r, v] : WaitFreeSim::initial_values(n, cfg)) {
        mem.poke(r, v);
      }
      std::vector<std::unique_ptr<WaitFreeSim>> procs;
      for (std::size_t p = 0; p < n; ++p) {
        procs.push_back(std::make_unique<WaitFreeSim>(p, n, cfg));
      }
      // The same starving schedule the sim tests use: the victim gets one
      // step in fifty, the contenders alternate.
      for (std::uint64_t tau = 0; tau < horizon; ++tau) {
        procs[tau % 50 == 0 ? 0 : 1 + (tau % 2)]->step(mem);
      }
      return procs;
    };
    const auto helped = run(true);
    const auto nohelp = run(false);
    const double helped_bound =
        static_cast<double>(helped[0]->max_own_steps());
    const double nohelp_in_flight =
        static_cast<double>(nohelp[0]->steps_in_flight());
    // Caught = the victim starves without helping (no completions, its
    // in-flight step count far beyond the helped run's worst op) while
    // helping keeps it completing within a bounded own-step cost.
    const bool caught = helped[0]->stats().ops >= 4 &&
                        nohelp[0]->stats().ops <= 1 &&
                        nohelp_in_flight > 10.0 * std::max(helped_bound, 1.0);
    return {{"victim_ops_helping", static_cast<double>(helped[0]->stats().ops)},
            {"victim_ops_nohelp", static_cast<double>(nohelp[0]->stats().ops)},
            {"victim_helped_by_other",
             static_cast<double>(helped[0]->stats().helped_by_other)},
            {"helping_max_own_steps", helped_bound},
            {"nohelp_steps_in_flight", nohelp_in_flight},
            {"nohelp_caught", caught ? 1.0 : 0.0}};
  }

  Metrics run_native_overhead(const Trial& trial,
                              const RunOptions& options) const {
    (void)trial;
    constexpr std::size_t kThreads = 3;
    const std::uint64_t ops = options.quick ? 30'000 : 200'000;

    lockfree::EbrDomain domain;
    using WfCounter = waitfree::WaitFreeObject<waitfree::CounterState>;
    WfCounter wrapped(domain, waitfree::CounterState{});
    HelpStats totals;
    double wrapped_sec = 0.0;
    {
      std::vector<std::unique_ptr<HelpStats>> stats(kThreads);
      std::vector<std::thread> threads;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kThreads; ++i) {
        stats[i] = std::make_unique<HelpStats>();
        threads.emplace_back([&, i] {
          lockfree::EbrThreadHandle ebr(domain);
          WfCounter::Thread t(wrapped, ebr);
          for (std::uint64_t k = 0; k < ops; ++k) {
            wrapped.apply(t, waitfree::counter_fetch_inc, 0);
          }
          *stats[i] = t.stats();
        });
      }
      for (auto& th : threads) th.join();
      wrapped_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      for (const auto& s : stats) totals += *s;
    }

    lockfree::CasCounter raw;
    double raw_sec = 0.0;
    {
      std::vector<std::thread> threads;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
          for (std::uint64_t k = 0; k < ops; ++k) raw.fetch_inc();
        });
      }
      for (auto& th : threads) th.join();
      raw_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }

    const double total = static_cast<double>(kThreads * ops);
    const double wrapped_mops = total / wrapped_sec / 1e6;
    const double raw_mops = total / raw_sec / 1e6;
    Metrics m = totals.metrics("wf");
    m["wrapped_mops_per_sec"] = wrapped_mops;
    m["raw_mops_per_sec"] = raw_mops;
    m["wrapped_over_raw"] = wrapped_mops / raw_mops;
    return m;
  }

  Metrics run_native_lin(const Trial& trial,
                         const RunOptions& options) const {
    check::HwOptions hw;
    hw.threads = 4;
    hw.ops_per_thread = options.quick ? 300 : 1'500;
    hw.bursts = 2;
    hw.seed = trial.seed;
    hw.stamp = check::StampMode::kLinPoint;

    Metrics m;
    double total_ops = 0.0;
    for (const char* structure : {"wf-counter", "wf-stack"}) {
      const check::HwResult r =
          check::HwSession(structure, hw).run();
      const std::string key =
          structure == std::string("wf-counter") ? "counter" : "stack";
      m["lin_" + key] = r.as_expected() ? 1.0 : 0.0;
      m["stamped_" + key] = static_cast<double>(r.stamped_ops);
      total_ops += static_cast<double>(r.total_ops);
    }
    m["operations"] = total_ops;

    // Stall-injection rescue on real threads: announce, let routine
    // foreign traffic commit it, collect.
    lockfree::EbrDomain domain;
    using WfCounter = waitfree::WaitFreeObject<waitfree::CounterState>;
    waitfree::WfConfig cfg;
    cfg.help_delay = 1;
    WfCounter object(domain, waitfree::CounterState{}, cfg);
    lockfree::EbrThreadHandle ebr_a(domain);
    lockfree::EbrThreadHandle ebr_b(domain);
    WfCounter::Thread a(object, ebr_a);
    WfCounter::Thread b(object, ebr_b);
    auto* d = object.announce_only(a, waitfree::counter_fetch_inc, 0);
    object.apply(b, waitfree::counter_fetch_inc, 0);
    const bool committed_by_traffic =
        object.announced_stage(d) == waitfree::DescStage::kCommitted;
    const std::uint64_t result = object.finish_announced(a, d);
    m["stall_rescued"] =
        committed_by_traffic && result == 0 && a.stats().helped_by_other == 1
            ? 1.0
            : 0.0;
    return m;
  }
};

Verdict WaitfreeOverhead::analyze(const std::vector<TrialResult>& results,
                                  const RunOptions& options,
                                  std::ostream& os) const {
  (void)options;
  Verdict verdict;
  Table helping({"scheduler", "n", "ops", "slow/Mop", "helped-by-other",
                 "fast retries/op", "scans/op", "victim slow/Mop"});
  double uniform_slow = 0.0;        // max merged rate over uniform cells
  double starver_victim_slow = 0.0; // max victim rate over starver cells
  double zipf_slow = 0.0;           // max merged rate over zipf cells
  bool lin_ok = true, rescue_ok = true, stall_ok = true;
  bool have_lin = false, have_rescue = false;

  for (const TrialResult& r : results) {
    const Metrics& m = r.metrics;
    switch (static_cast<Kind>(static_cast<int>(r.trial.params.at("kind")))) {
      case Kind::kSimHelping: {
        const auto sched =
            static_cast<Sched>(static_cast<int>(r.trial.params.at("sched")));
        const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
        const double slow = m.at("wf_slow_per_mop");
        const double ops = m.at("wf_ops");
        helping.add_row(
            {kSchedLabels[static_cast<int>(sched)], fmt(n),
             fmt(ops, 0), fmt(slow, 1), fmt(m.at("wf_helped_by_other"), 0),
             fmt(m.at("wf_fast_retries") / ops, 3),
             fmt(m.at("wf_help_scans") / ops, 2),
             fmt(m.at("victim_slow_per_mop"), 1)});
        const std::string tag = std::string(kSchedLabels[static_cast<int>(
                                    sched)]) +
                                "_n" + std::to_string(n);
        verdict.summary["slow_per_mop_" + tag] = slow;
        if (sched == Sched::kUniform) {
          uniform_slow = std::max(uniform_slow, slow);
        } else if (sched == Sched::kStarver) {
          // The merged rate under the starver is diluted by the
          // contenders fast-pathing among themselves; the adversarial
          // signal is the victim's own rate (pid 0, one step in 64).
          starver_victim_slow =
              std::max(starver_victim_slow, m.at("victim_slow_per_mop"));
        } else {
          zipf_slow = std::max(zipf_slow, slow);
        }
        break;
      }
      case Kind::kSimOverhead:
        verdict.summary["sim_wrapped_steps_per_op"] =
            m.at("wrapped_steps_per_op");
        verdict.summary["sim_raw_steps_per_op"] = m.at("raw_steps_per_op");
        verdict.summary["sim_steps_per_op_overhead"] =
            m.at("steps_per_op_overhead");
        verdict.summary["sim_steps_per_sec_ratio"] =
            m.at("steps_per_sec_ratio");
        break;
      case Kind::kSimRescue:
        have_rescue = true;
        rescue_ok = exp::flag(m.at("nohelp_caught"));
        verdict.summary["victim_ops_helping"] = m.at("victim_ops_helping");
        verdict.summary["victim_ops_nohelp"] = m.at("victim_ops_nohelp");
        verdict.summary["helping_max_own_steps"] =
            m.at("helping_max_own_steps");
        verdict.summary["nohelp_steps_in_flight"] =
            m.at("nohelp_steps_in_flight");
        break;
      case Kind::kNativeOverhead:
        verdict.summary["native_wrapped_mops"] = m.at("wrapped_mops_per_sec");
        verdict.summary["native_raw_mops"] = m.at("raw_mops_per_sec");
        verdict.summary["native_wrapped_over_raw"] = m.at("wrapped_over_raw");
        verdict.summary["native_slow_per_mop"] = m.at("wf_slow_per_mop");
        break;
      case Kind::kNativeLin:
        have_lin = true;
        lin_ok = exp::flag(m.at("lin_counter")) && exp::flag(m.at("lin_stack"));
        stall_ok = exp::flag(m.at("stall_rescued"));
        verdict.summary["lin_counter"] = m.at("lin_counter");
        verdict.summary["lin_stack"] = m.at("lin_stack");
        verdict.summary["stall_rescued"] = m.at("stall_rescued");
        break;
    }
  }

  os << "helping rate vs scheduler skew (wrapped counter, sim)\n\n";
  helping.print(os);
  os << "\nslow/Mop = slow-path entries per 10^6 completed ops, merged "
        "over processes; the victim column (pid 0) is where the starver "
        "shows up — the contenders dilute its merged rate.\n";

  const double adv_over_uniform =
      starver_victim_slow / std::max(uniform_slow, 1.0);
  verdict.summary["slow_per_mop_uniform_max"] = uniform_slow;
  verdict.summary["slow_per_mop_zipf_max"] = zipf_slow;
  verdict.summary["slow_per_mop_starver_victim"] = starver_victim_slow;
  verdict.summary["starver_victim_over_uniform"] = adv_over_uniform;

  // Verdict thresholds (EXPERIMENTS.md): the thesis's regime separation.
  // Uniform keeps the slow path under 0.1% of ops; the starver's victim
  // is pushed onto it orders of magnitude (>= 100x) more often. Zipf
  // rates sit in between and are reported, not gated — skewed-but-
  // stochastic is exactly the regime the paper says still behaves.
  const bool uniform_rare = uniform_slow < 1000.0;    // < 0.1% of ops
  const bool adversary_loud = adv_over_uniform >= 100.0;
  verdict.reproduced = uniform_rare && adversary_loud &&
                       have_rescue && rescue_ok && have_lin && lin_ok &&
                       stall_ok;
  verdict.detail =
      "uniform slow path " + fmt(uniform_slow, 1) + "/Mop, starver victim " +
      fmt(starver_victim_slow, 0) + "/Mop (" + fmt(adv_over_uniform, 0) +
      "x); wrapped/raw native " +
      fmt(verdict.summary.count("native_wrapped_over_raw")
              ? verdict.summary["native_wrapped_over_raw"]
              : 0.0,
          2) +
      "x, sim steps/op overhead " +
      fmt(verdict.summary.count("sim_steps_per_op_overhead")
              ? verdict.summary["sim_steps_per_op_overhead"]
              : 0.0,
          2) +
      "x";
  return verdict;
}

const exp::RegisterExperiment reg(std::make_unique<WaitfreeOverhead>());

}  // namespace
