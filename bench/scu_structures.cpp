// Section 5's class-membership claim, exercised on real structure
// workloads: "Instances of this class are used to obtain efficient data
// structures such as stacks [21], queues [17]". The simulated Treiber
// stack and Michael-Scott queue (core/sim_stack.hpp, core/sim_queue.hpp)
// are run under the uniform stochastic scheduler; their system latencies
// must show the same Theta(sqrt n) law and n-fairness as the abstract
// SCU(q, s) analysis predicts.
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/sim_queue.hpp"
#include "core/sim_stack.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

class ScuStructures final : public exp::Experiment {
 public:
  std::string name() const override { return "scu_structures"; }
  std::string artifact() const override {
    return "Section 5: stacks and queues are SCU-class — and inherit its "
           "latency law";
  }
  std::string claim() const override {
    return "Claim: structure workloads show the same Theta(sqrt n) system "
           "latency and n-fair individual latency as abstract SCU(q, s).";
  }
  std::uint64_t default_seed() const override { return 55; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<std::size_t> ns =
        options.quick ? std::vector<std::size_t>{4, 8, 16, 32}
                      : std::vector<std::size_t>{4, 8, 16, 32, 64};
    std::vector<Trial> grid;
    for (std::size_t n : ns) {
      for (int queue : {0, 1}) {
        Trial t;
        t.id = std::string(queue ? "queue" : "stack") + " n=" + fmt(n);
        t.params = {{"n", static_cast<double>(n)},
                    {"queue", static_cast<double>(queue)}};
        // Old binary: stack seeds 55+n, queue seeds 550+n.
        t.seed = queue ? base + 495 + n : base + n;
        grid.push_back(std::move(t));
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const bool queue = exp::flag(trial.params.at("queue"));
    Simulation::Options opts;
    opts.seed = trial.seed;
    StepMachineFactory factory;
    if (queue) {
      opts.num_registers = SimQueue::registers_required(n, 8);
      opts.initial_values = SimQueue::initial_values();
      factory = SimQueue::factory(8);
    } else {
      opts.num_registers = SimStack::registers_required(n, 8);
      factory = SimStack::factory(8);
    }
    Simulation sim(n, factory, std::make_unique<UniformScheduler>(), opts);
    sim.run(options.horizon(100'000, 20'000));
    sim.reset_stats();
    sim.run(options.horizon(1'200'000, 250'000));
    const double w = sim.report().system_latency();
    return {{"w", w},
            {"fairness", sim.report().max_individual_latency() /
                             (static_cast<double>(n) * w)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    auto metric = [&](std::size_t n, bool queue,
                      const std::string& key) -> double {
      for (const TrialResult& r : results) {
        if (static_cast<std::size_t>(r.trial.params.at("n")) == n &&
            exp::flag(r.trial.params.at("queue")) == queue) {
          return r.metrics.at(key);
        }
      }
      throw std::logic_error("scu_structures: missing trial");
    };

    std::vector<double> ns, stack_ws, queue_ws;
    Table table({"n", "scan-validate W (exact)", "stack W", "stack fairness",
                 "queue W", "queue fairness"});
    bool fair = true;
    const double fair_lo = options.quick ? 0.75 : 0.8;
    const double fair_hi = options.quick ? 1.4 : 1.3;
    for (const TrialResult& r : results) {
      if (exp::flag(r.trial.params.at("queue"))) continue;
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const double sv = markov::system_latency(
          markov::build_scan_validate_system_chain(n));
      const double stack_w = metric(n, false, "w");
      const double stack_f = metric(n, false, "fairness");
      const double queue_w = metric(n, true, "w");
      const double queue_f = metric(n, true, "fairness");
      ns.push_back(static_cast<double>(n));
      stack_ws.push_back(stack_w);
      queue_ws.push_back(queue_w);
      table.add_row({fmt(n), fmt(sv, 2), fmt(stack_w, 2), fmt(stack_f, 3),
                     fmt(queue_w, 2), fmt(queue_f, 3)});
      fair = fair && stack_f > fair_lo && stack_f < fair_hi &&
             queue_f > fair_lo && queue_f < fair_hi;
    }
    table.print(os);

    const LinearFit stack_fit = fit_power_law(ns, stack_ws);
    const LinearFit queue_fit = fit_power_law(ns, queue_ws);
    os << "growth exponents: stack n^" << fmt(stack_fit.slope, 3)
       << ", queue n^" << fmt(queue_fit.slope, 3)
       << " (0.5 predicted asymptotically; both match the mild "
          "finite-size excess that abstract SCU(0, s>1) also shows at "
          "these n — see thm4_scu_latency)\n";

    Verdict v;
    v.reproduced = fair && stack_fit.slope > 0.25 &&
                   stack_fit.slope < 0.75 && queue_fit.slope > 0.1 &&
                   queue_fit.slope < 0.75;
    v.detail =
        "both structures inherit the SCU latency shape: sublinear "
        "sqrt-like growth and n-fair individual latencies";
    v.summary = {{"stack_exponent", stack_fit.slope},
                 {"queue_exponent", queue_fit.slope}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<ScuStructures>());

}  // namespace
