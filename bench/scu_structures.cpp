// Section 5's class-membership claim, exercised on real structure
// workloads: "Instances of this class are used to obtain efficient data
// structures such as stacks [21], queues [17]". The simulated Treiber
// stack and Michael-Scott queue (core/sim_stack.hpp, core/sim_queue.hpp)
// are run under the uniform stochastic scheduler; their system latencies
// must show the same Theta(sqrt n) law and n-fairness as the abstract
// SCU(q, s) analysis predicts.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/sim_queue.hpp"
#include "core/sim_stack.hpp"
#include "core/simulation.hpp"
#include "markov/builders.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Measured {
  double w = 0.0;
  double fairness = 0.0;
};

Measured measure(Simulation& sim, std::size_t n) {
  sim.run(100'000);
  sim.reset_stats();
  sim.run(1'200'000);
  Measured m;
  m.w = sim.report().system_latency();
  m.fairness = sim.report().max_individual_latency() /
               (static_cast<double>(n) * m.w);
  return m;
}

Measured run_stack(std::size_t n, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = SimStack::registers_required(n, 8);
  opts.seed = seed;
  Simulation sim(n, SimStack::factory(8),
                 std::make_unique<UniformScheduler>(), opts);
  return measure(sim, n);
}

Measured run_queue(std::size_t n, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = SimQueue::registers_required(n, 8);
  opts.initial_values = SimQueue::initial_values();
  opts.seed = seed;
  Simulation sim(n, SimQueue::factory(8),
                 std::make_unique<UniformScheduler>(), opts);
  return measure(sim, n);
}

}  // namespace

int main() {
  bench::print_header(
      "Section 5: stacks and queues are SCU-class — and inherit its "
      "latency law",
      "Claim: structure workloads show the same Theta(sqrt n) system "
      "latency and n-fair individual latency as abstract SCU(q, s).");
  bench::print_seed(55);

  std::vector<double> ns, stack_ws, queue_ws;
  Table table({"n", "scan-validate W (exact)", "stack W", "stack fairness",
               "queue W", "queue fairness"});
  bool fair = true;
  for (std::size_t n : {4, 8, 16, 32, 64}) {
    const double sv =
        markov::system_latency(markov::build_scan_validate_system_chain(n));
    const Measured stack = run_stack(n, 55 + n);
    const Measured queue = run_queue(n, 550 + n);
    ns.push_back(static_cast<double>(n));
    stack_ws.push_back(stack.w);
    queue_ws.push_back(queue.w);
    table.add_row({fmt(n), fmt(sv, 2), fmt(stack.w, 2),
                   fmt(stack.fairness, 3), fmt(queue.w, 2),
                   fmt(queue.fairness, 3)});
    fair = fair && stack.fairness > 0.8 && stack.fairness < 1.3 &&
           queue.fairness > 0.8 && queue.fairness < 1.3;
  }
  table.print(std::cout);

  const LinearFit stack_fit = fit_power_law(ns, stack_ws);
  const LinearFit queue_fit = fit_power_law(ns, queue_ws);
  std::cout << "growth exponents: stack n^" << fmt(stack_fit.slope, 3)
            << ", queue n^" << fmt(queue_fit.slope, 3)
            << " (0.5 predicted asymptotically; both match the mild "
               "finite-size excess that abstract SCU(0, s>1) also shows at "
               "these n — see thm4_scu_latency)\n";

  const bool reproduced = fair && stack_fit.slope > 0.25 &&
                          stack_fit.slope < 0.75 && queue_fit.slope > 0.1 &&
                          queue_fit.slope < 0.75;
  bench::print_verdict(reproduced,
                       "both structures inherit the SCU latency shape: "
                       "sublinear sqrt-like growth and n-fair individual "
                       "latencies");
  return reproduced ? 0 : 1;
}
