// Hardware microbenchmarks (google-benchmark) of the native lock-free
// structures used by the paper's empirical appendix: the CAS counter (the
// Appendix B workload), the wait-free fetch_add baseline, the Treiber
// stack, the Michael-Scott queue, and the universal SCU object.
//
// These report per-operation hardware cost; the figure-level experiments
// (fig5_completion_rate) report the paper's completion-rate series.
#include <benchmark/benchmark.h>

#include "lockfree/counter.hpp"
#include "lockfree/ebr.hpp"
#include "lockfree/ms_queue.hpp"
#include "lockfree/scu_object.hpp"
#include "lockfree/harris_list.hpp"
#include "lockfree/hash_set.hpp"
#include "lockfree/statistical_counter.hpp"
#include "lockfree/treiber_stack.hpp"

namespace {

using namespace pwf::lockfree;

void BM_CasCounter(benchmark::State& state) {
  static CasCounter counter;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    steps += counter.fetch_inc().steps;
  }
  state.counters["steps/op"] =
      benchmark::Counter(static_cast<double>(steps),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CasCounter)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_FetchAddCounter(benchmark::State& state) {
  static FetchAddCounter counter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.fetch_inc().value);
  }
}
BENCHMARK(BM_FetchAddCounter)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_TreiberStackPushPop(benchmark::State& state) {
  static EbrDomain domain;
  static TreiberStack<int> stack(domain);
  EbrThreadHandle handle(domain);
  for (auto _ : state) {
    stack.push(handle, 1);
    benchmark::DoNotOptimize(stack.pop(handle));
  }
}
BENCHMARK(BM_TreiberStackPushPop)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

void BM_MsQueueEnqDeq(benchmark::State& state) {
  static EbrDomain domain;
  static MsQueue<int> queue(domain);
  EbrThreadHandle handle(domain);
  for (auto _ : state) {
    queue.enqueue(handle, 1);
    benchmark::DoNotOptimize(queue.dequeue(handle));
  }
}
BENCHMARK(BM_MsQueueEnqDeq)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_HarrisListInsertErase(benchmark::State& state) {
  static EbrDomain domain;
  static HarrisList<int> list(domain);
  EbrThreadHandle handle(domain);
  const int key = static_cast<int>(state.thread_index());
  for (auto _ : state) {
    list.insert(handle, key);
    list.erase(handle, key);
  }
}
BENCHMARK(BM_HarrisListInsertErase)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

void BM_HashSetInsertErase(benchmark::State& state) {
  static EbrDomain domain;
  static HashSet<int> set(domain, 64);
  EbrThreadHandle handle(domain);
  int key = static_cast<int>(state.thread_index()) * 1'000'000;
  for (auto _ : state) {
    set.insert(handle, key);
    set.erase(handle, key);
    ++key;
  }
}
BENCHMARK(BM_HashSetInsertErase)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

void BM_StatisticalCounterAdd(benchmark::State& state) {
  static StatisticalCounter counter(8);
  const auto tid = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    counter.add(tid);
  }
}
BENCHMARK(BM_StatisticalCounterAdd)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

void BM_ScuObjectIncrement(benchmark::State& state) {
  static EbrDomain domain;
  static ScuObject<std::uint64_t> object(domain, 0);
  EbrThreadHandle handle(domain);
  std::uint64_t attempts = 0;
  for (auto _ : state) {
    attempts += object.apply(handle, [](std::uint64_t& v) { return ++v; })
                    .second;
  }
  state.counters["cas/op"] =
      benchmark::Counter(static_cast<double>(attempts),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ScuObjectIncrement)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
