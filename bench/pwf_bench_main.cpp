// pwf_bench — the unified experiment driver. Replaces the per-bench
// binaries: every experiment registers itself with exp::Registry and this
// driver selects, runs (in parallel where safe), prints, and serializes
// them.
//
//   pwf_bench --list                 enumerate experiments
//   pwf_bench --filter thm4,fig5     substring selection (comma-separated)
//   pwf_bench --seed 123             override every experiment's base seed
//   pwf_bench --quick                CI-sized grids and horizons
//   pwf_bench --threads 8            trial-pool width (0 = hardware)
//   pwf_bench --trials 3             repetitions per grid point (averaged)
//   pwf_bench --json out.json        structured results (schema
//                                    pwf-bench-results/1)
//
// Exit status is the regression signal scripts/reproduce.sh keys on:
// 0 iff every selected experiment's SHAPE verdict is REPRODUCED.
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"

namespace {

using namespace pwf;

void print_usage(std::ostream& os) {
  os << "usage: pwf_bench [options]\n"
        "  --list            list registered experiments and exit\n"
        "  --filter NAMES    run experiments whose name contains any of\n"
        "                    the comma-separated substrings (default: all)\n"
        "  --seed N          override every experiment's base seed\n"
        "  --quick           reduced grids/horizons (CI mode)\n"
        "  --threads N       trial worker threads (0 = hardware, default)\n"
        "  --trials N        repetitions per grid point, averaged "
        "(default 1)\n"
        "  --json PATH       write structured results to PATH\n"
        "  --out PATH        alias for --json; '-' writes to stdout\n"
        "  --help            this message\n";
}

struct Args {
  exp::RunOptions options;
  std::string filter;
  std::string json_path;
  bool list = false;
  bool help = false;
};

bool parse_args(int argc, char** argv, Args& args, std::string& error) {
  auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      error = flag + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--list") {
        args.list = true;
      } else if (arg == "--help" || arg == "-h") {
        args.help = true;
      } else if (arg == "--quick") {
        args.options.quick = true;
      } else if (arg == "--filter") {
        const char* v = need_value(i, arg);
        if (!v) return false;
        args.filter = v;
      } else if (arg == "--seed") {
        const char* v = need_value(i, arg);
        if (!v) return false;
        args.options.seed_override = std::stoull(v);
      } else if (arg == "--threads") {
        const char* v = need_value(i, arg);
        if (!v) return false;
        args.options.threads = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--trials") {
        const char* v = need_value(i, arg);
        if (!v) return false;
        args.options.trials = static_cast<unsigned>(std::stoul(v));
        if (args.options.trials == 0) {
          error = "--trials must be >= 1";
          return false;
        }
      } else if (arg == "--json" || arg == "--out") {
        const char* v = need_value(i, arg);
        if (!v) return false;
        args.json_path = v;
      } else {
        error = "unknown option: " + arg;
        return false;
      }
    } catch (const std::exception&) {
      error = "bad value for " + arg;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  std::string error;
  if (!parse_args(argc, argv, args, error)) {
    std::cerr << "pwf_bench: " << error << "\n";
    print_usage(std::cerr);
    return 2;
  }
  if (args.help) {
    print_usage(std::cout);
    return 0;
  }

  const auto& registry = exp::Registry::instance();
  if (args.list) {
    for (const exp::Experiment* e : registry.all()) {
      std::cout << e->name() << (e->exclusive() ? "  [exclusive]" : "")
                << "\n    " << e->artifact() << "\n";
    }
    std::cout << registry.size() << " experiments\n";
    return 0;
  }

  const auto selected = registry.match(args.filter);
  if (selected.empty()) {
    std::cerr << "pwf_bench: no experiment matches filter '" << args.filter
              << "' (see --list)\n";
    return 2;
  }

  const exp::TrialRunner runner(args.options);
  exp::ResultSink sink;
  const auto t0 = std::chrono::steady_clock::now();
  for (const exp::Experiment* e : selected) {
    try {
      exp::ExperimentRun run = runner.run(*e);
      exp::write_text(std::cout, run);
      sink.add(std::move(run));
    } catch (const std::exception& ex) {
      std::cerr << "pwf_bench: experiment '" << e->name()
                << "' failed: " << ex.what() << "\n";
      return 2;
    }
  }
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "\n==================================================\n"
            << "pwf_bench: " << sink.num_reproduced() << "/"
            << sink.runs().size() << " experiments REPRODUCED in "
            << static_cast<std::uint64_t>(total_ms) << " ms";
  if (!sink.all_reproduced()) {
    std::cout << "\n  not reproduced:";
    for (const exp::ExperimentRun& run : sink.runs()) {
      if (!run.verdict.reproduced) {
        std::cout << " " << run.experiment->name();
      }
    }
  }
  std::cout << "\n";

  if (!args.json_path.empty()) {
    if (args.json_path == "-") {
      sink.write_json(std::cout, runner.options());
    } else {
      std::ofstream out(args.json_path);
      if (!out) {
        std::cerr << "pwf_bench: cannot open " << args.json_path
                  << " for writing\n";
        return 2;
      }
      sink.write_json(out, runner.options());
      std::cout << "results written to " << args.json_path << "\n";
    }
  }

  return sink.all_reproduced() ? 0 : 1;
}
