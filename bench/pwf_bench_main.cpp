// pwf_bench — the unified experiment driver. Replaces the per-bench
// binaries: every experiment registers itself with exp::Registry and this
// driver selects, runs (in parallel where safe), prints, and serializes
// them.
//
//   pwf_bench --list                 enumerate experiments
//   pwf_bench --filter thm4,fig5     substring selection (comma-separated)
//   pwf_bench --seed 123             override every experiment's base seed
//   pwf_bench --quick                CI-sized grids and horizons
//   pwf_bench --threads 8            trial-pool width (0 = hardware)
//   pwf_bench --trials 3             repetitions per grid point (averaged)
//   pwf_bench --reclaim pool         reclamation policy for experiments
//                                    with a pwf::mem axis (default: all)
//   pwf_bench --strategy coarse      strategy column for experiments with
//                                    a skip-list strategy axis
//                                    (default: all)
//   pwf_bench --json out.json        structured results (schema
//                                    pwf-bench-results/1)
//
// Exit status is the regression signal scripts/reproduce.sh keys on:
// 0 iff every selected experiment's SHAPE verdict is REPRODUCED.
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/hw_capture.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "lockfree/strategy.hpp"
#include "mem/reclaimer.hpp"
#include "util/cli.hpp"

namespace {

using namespace pwf;

struct Args {
  exp::RunOptions options;
  std::string filter;
  std::string json_path;
  bool list = false;
  bool help = false;
};

util::CliParser make_parser(Args& args) {
  util::CliParser cli("pwf_bench");
  cli.flag("--list", "list registered experiments and exit", &args.list)
      .option("--filter", "NAMES",
              "run experiments whose name contains any of\n"
              "the comma-separated substrings (default: all)",
              [&args](const std::string& v) { args.filter = v; })
      .option("--seed", "N", "override every experiment's base seed",
              [&args](const std::string& v) {
                args.options.seed_override = std::stoull(v);
              })
      .flag("--quick", "reduced grids/horizons (CI mode)",
            &args.options.quick)
      .option("--threads", "N",
              "trial worker threads (0 = hardware, default)",
              [&args](const std::string& v) {
                args.options.threads = static_cast<unsigned>(std::stoul(v));
              })
      .option("--trials", "N",
              "repetitions per grid point, averaged (default 1)",
              [&args](const std::string& v) {
                args.options.trials = static_cast<unsigned>(std::stoul(v));
                if (args.options.trials == 0) {
                  throw std::invalid_argument("--trials must be >= 1");
                }
              })
      .option("--reclaim", "POLICY",
              "restrict reclamation-axis experiments to one\n"
              "pwf::mem policy: epoch | hazard | pool (default: all)",
              [&args](const std::string& v) { args.options.reclaim = v; })
      .option("--strategy", "S",
              "restrict strategy-axis experiments (struct_matrix)\n"
              "to one column: coarse | optimistic | lockfree\n"
              "(default: all)",
              [&args](const std::string& v) { args.options.strategy = v; })
      .option("--clock", "MODE",
              "restrict clock-axis experiments (capture_overhead)\n"
              "to one capture clock: ticket | tsc (default: both)",
              [&args](const std::string& v) { args.options.clock = v; })
      .option_string("--json",
                     "write structured results to PATH ('-' = stdout)",
                     &args.json_path)
      .alias("--out", "--json")
      .flag("--help", "this message", &args.help)
      .alias("-h", "--help");
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const util::CliParser cli = make_parser(args);
  std::string error;
  if (!cli.parse(argc, argv, error)) {
    std::cerr << "pwf_bench: " << error << "\n";
    cli.print_usage(std::cerr);
    return 2;
  }
  if (args.help) {
    cli.print_usage(std::cout);
    return 0;
  }
  if (!args.options.reclaim.empty() &&
      !mem::parse_reclaim_policy(args.options.reclaim)) {
    std::cerr << "pwf_bench: unknown reclaim policy '" << args.options.reclaim
              << "' (epoch | hazard | pool)\n";
    return 2;
  }
  if (!args.options.strategy.empty() &&
      !lockfree::parse_sync_strategy(args.options.strategy)) {
    std::cerr << "pwf_bench: unknown strategy '" << args.options.strategy
              << "' (coarse | optimistic | lockfree)\n";
    return 2;
  }
  if (!args.options.clock.empty() &&
      !check::parse_clock_mode(args.options.clock)) {
    std::cerr << "pwf_bench: unknown clock mode '" << args.options.clock
              << "' (ticket | tsc)\n";
    return 2;
  }

  const auto& registry = exp::Registry::instance();
  if (args.list) {
    for (const exp::Experiment* e : registry.all()) {
      std::cout << e->name() << (e->exclusive() ? "  [exclusive]" : "")
                << "\n    " << e->artifact() << "\n";
    }
    std::cout << registry.size() << " experiments\n";
    return 0;
  }

  const auto selected = registry.match(args.filter);
  if (selected.empty()) {
    std::cerr << "pwf_bench: no experiment matches filter '" << args.filter
              << "' (see --list)\n";
    return 2;
  }

  const exp::TrialRunner runner(args.options);
  exp::ResultSink sink;
  const auto t0 = std::chrono::steady_clock::now();
  for (const exp::Experiment* e : selected) {
    try {
      exp::ExperimentRun run = runner.run(*e);
      exp::write_text(std::cout, run);
      sink.add(std::move(run));
    } catch (const std::exception& ex) {
      std::cerr << "pwf_bench: experiment '" << e->name()
                << "' failed: " << ex.what() << "\n";
      return 2;
    }
  }
  const double total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "\n==================================================\n"
            << "pwf_bench: " << sink.num_reproduced() << "/"
            << sink.runs().size() << " experiments REPRODUCED in "
            << static_cast<std::uint64_t>(total_ms) << " ms";
  if (!sink.all_reproduced()) {
    std::cout << "\n  not reproduced:";
    for (const exp::ExperimentRun& run : sink.runs()) {
      if (!run.verdict.reproduced) {
        std::cout << " " << run.experiment->name();
      }
    }
  }
  std::cout << "\n";

  if (!args.json_path.empty()) {
    if (args.json_path == "-") {
      sink.write_json(std::cout, runner.options());
    } else {
      std::ofstream out(args.json_path);
      if (!out) {
        std::cerr << "pwf_bench: cannot open " << args.json_path
                  << " for writing\n";
        return 2;
      }
      sink.write_json(out, runner.options());
      std::cout << "results written to " << args.json_path << "\n";
    }
  }

  return sink.all_reproduced() ? 0 : 1;
}
