// Section 5's RCU claim, exercised: "The read-copy-update (RCU)
// synchronization mechanism employed by the Linux kernel is also an
// instance of this pattern."
//
// Three series from the RCU step machine (core/sim_rcu.hpp):
//   1. readers are wait-free: reader cost is exactly 1 + L of their own
//      steps regardless of how many writers contend;
//   2. writers are SCU: their per-update cost carries the contention
//      factor in the number of *writers* only;
//   3. the grace-period ablation: the torn-read rate vanishes as the
//      block-recycling pool deepens (finite pools = no grace period).
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/sim_rcu.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

Metrics run_rcu(std::size_t writers, std::size_t readers, std::size_t slots,
                std::uint64_t seed, const RunOptions& options) {
  RcuConfig config{writers, 3, slots};
  std::vector<const SimRcu*> machines;
  Simulation::Options opts;
  opts.num_registers = SimRcu::registers_required(config);
  opts.seed = seed;
  auto factory = [&machines, config](std::size_t pid, std::size_t n) {
    auto m = std::make_unique<SimRcu>(pid, n, config);
    machines.push_back(m.get());
    return m;
  };
  Simulation sim(writers + readers, factory,
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(options.horizon(100'000, 20'000));
  sim.reset_stats();
  // reset_stats does not clear machine-side op counters; measure with
  // before/after deltas.
  std::vector<std::uint64_t> reads0, updates0, torn0;
  for (const SimRcu* m : machines) {
    reads0.push_back(m->reads());
    updates0.push_back(m->updates());
    torn0.push_back(m->torn_reads());
  }
  sim.run(options.horizon(900'000, 180'000));

  double r_steps = 0, r_ops = 0, w_steps = 0, w_ops = 0, torn = 0;
  for (std::size_t p = 0; p < machines.size(); ++p) {
    const double steps =
        static_cast<double>(sim.report().steps_per_process[p]);
    if (machines[p]->is_writer()) {
      w_steps += steps;
      w_ops += static_cast<double>(machines[p]->updates() - updates0[p]);
    } else {
      r_steps += steps;
      r_ops += static_cast<double>(machines[p]->reads() - reads0[p]);
      torn += static_cast<double>(machines[p]->torn_reads() - torn0[p]);
    }
  }
  Metrics out{{"reader_own_cost", 0.0},
              {"writer_own_cost", 0.0},
              {"torn_rate", 0.0}};
  if (r_ops > 0) {
    out["reader_own_cost"] = r_steps / r_ops;
    out["torn_rate"] = torn / r_ops;
  }
  if (w_ops > 0) out["writer_own_cost"] = w_steps / w_ops;
  return out;
}

class RcuPattern final : public exp::Experiment {
 public:
  std::string name() const override { return "rcu_pattern"; }
  std::string artifact() const override {
    return "Section 5: RCU is an SCU instance — wait-free readers, SCU "
           "writers";
  }
  std::string claim() const override {
    return "Reader cost must be flat in writer count; writer cost must "
           "carry the contention factor; shallow recycling pools (no grace "
           "period) must produce torn reads.";
  }
  std::uint64_t default_seed() const override { return 91; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t writers : {1, 2, 4, 8, 16}) {
      Trial t;
      t.id = "writers=" + fmt(writers);
      t.params = {{"writers", static_cast<double>(writers)},
                  {"slots", 16.0}};
      t.seed = base + writers;
      grid.push_back(std::move(t));
    }
    for (std::size_t slots : {1, 2, 4, 8, 32}) {
      Trial t;
      t.id = "pool slots=" + fmt(slots);
      t.params = {{"writers", 4.0},
                  {"slots", static_cast<double>(slots)},
                  {"ablation", 1.0}};
      t.seed = base + 100 + slots;  // old binary: 191 + slots
      grid.push_back(std::move(t));
    }
    (void)options;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    return run_rcu(static_cast<std::size_t>(trial.params.at("writers")), 8,
                   static_cast<std::size_t>(trial.params.at("slots")),
                   trial.seed, options);
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    os << "payload L = 3 registers; 8 readers throughout\n\n";
    Table table({"writers", "reader steps/read (4 = 1+L)",
                 "writer steps/update", "torn rate (pool=16)"});
    bool readers_flat = true;
    double writer_1 = 0.0, writer_16 = 0.0;
    for (const TrialResult& r : results) {
      if (r.trial.params.count("ablation")) continue;
      const auto writers =
          static_cast<std::size_t>(r.trial.params.at("writers"));
      const Metrics& m = r.metrics;
      table.add_row({fmt(writers), fmt(m.at("reader_own_cost"), 3),
                     fmt(m.at("writer_own_cost"), 2),
                     fmt(m.at("torn_rate"), 6)});
      readers_flat =
          readers_flat && std::abs(m.at("reader_own_cost") - 4.0) < 0.05;
      if (writers == 1) writer_1 = m.at("writer_own_cost");
      if (writers == 16) writer_16 = m.at("writer_own_cost");
    }
    table.print(os);
    os << "writer cost growth 1 -> 16 writers: " << fmt(writer_16 / writer_1, 2)
       << "x (SCU contention; readers untouched)\n";

    os << "\ngrace-period ablation (4 writers, 8 readers): torn-read "
          "rate vs recycling pool depth:\n";
    Table torn({"pool slots per writer", "torn-read rate"});
    std::vector<double> rates;
    for (const TrialResult& r : results) {
      if (!r.trial.params.count("ablation")) continue;
      const auto slots = static_cast<std::size_t>(r.trial.params.at("slots"));
      torn.add_row({fmt(slots), fmt(r.metrics.at("torn_rate"), 6)});
      rates.push_back(r.metrics.at("torn_rate"));
    }
    torn.print(os);
    const bool torn_monotone = rates.front() > 0.01 && rates.back() < 1e-4 &&
                               rates.front() > rates.back();

    Verdict v;
    v.reproduced = readers_flat && writer_16 > 1.3 * writer_1 && torn_monotone;
    v.detail =
        "RCU splits exactly as the SCU analysis says: wait-free O(1) reads "
        "independent of contention, sqrt-style writer contention, and the "
        "grace-period requirement visible as soon as blocks recycle early";
    v.summary = {{"writer_growth", writer_16 / writer_1}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<RcuPattern>());

}  // namespace
