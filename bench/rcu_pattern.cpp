// Section 5's RCU claim, exercised: "The read-copy-update (RCU)
// synchronization mechanism employed by the Linux kernel is also an
// instance of this pattern."
//
// Three series from the RCU step machine (core/sim_rcu.hpp):
//   1. readers are wait-free: reader cost is exactly 1 + L of their own
//      steps regardless of how many writers contend;
//   2. writers are SCU: their per-update cost carries the contention
//      factor in the number of *writers* only;
//   3. the grace-period ablation: the torn-read rate vanishes as the
//      block-recycling pool deepens (finite pools = no grace period).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/sim_rcu.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct RcuRun {
  double reader_own_cost = 0.0;  // reader steps per completed read
  double writer_own_cost = 0.0;  // writer steps per completed update
  double torn_rate = 0.0;
};

RcuRun run(std::size_t writers, std::size_t readers, std::size_t slots,
           std::uint64_t seed) {
  RcuConfig config{writers, 3, slots};
  std::vector<const SimRcu*> machines;
  Simulation::Options opts;
  opts.num_registers = SimRcu::registers_required(config);
  opts.seed = seed;
  auto factory = [&machines, config](std::size_t pid, std::size_t n) {
    auto m = std::make_unique<SimRcu>(pid, n, config);
    machines.push_back(m.get());
    return m;
  };
  Simulation sim(writers + readers, factory,
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  sim.reset_stats();
  // reset_stats does not clear machine-side op counters; measure with
  // before/after deltas.
  std::vector<std::uint64_t> reads0, updates0, torn0;
  for (const SimRcu* m : machines) {
    reads0.push_back(m->reads());
    updates0.push_back(m->updates());
    torn0.push_back(m->torn_reads());
  }
  sim.run(900'000);

  RcuRun out;
  double r_steps = 0, r_ops = 0, w_steps = 0, w_ops = 0, torn = 0;
  for (std::size_t p = 0; p < machines.size(); ++p) {
    const double steps =
        static_cast<double>(sim.report().steps_per_process[p]);
    if (machines[p]->is_writer()) {
      w_steps += steps;
      w_ops += static_cast<double>(machines[p]->updates() - updates0[p]);
    } else {
      r_steps += steps;
      r_ops += static_cast<double>(machines[p]->reads() - reads0[p]);
      torn += static_cast<double>(machines[p]->torn_reads() - torn0[p]);
    }
  }
  if (r_ops > 0) {
    out.reader_own_cost = r_steps / r_ops;
    out.torn_rate = torn / r_ops;
  }
  if (w_ops > 0) out.writer_own_cost = w_steps / w_ops;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Section 5: RCU is an SCU instance — wait-free readers, SCU writers",
      "Reader cost must be flat in writer count; writer cost must carry "
      "the contention factor; shallow recycling pools (no grace period) "
      "must produce torn reads.");
  bench::print_seed(91);

  std::cout << "payload L = 3 registers; 8 readers throughout\n\n";
  Table table({"writers", "reader steps/read (4 = 1+L)", "writer steps/update",
               "torn rate (pool=16)"});
  bool readers_flat = true;
  double writer_1 = 0.0, writer_16 = 0.0;
  for (std::size_t writers : {1, 2, 4, 8, 16}) {
    const RcuRun r = run(writers, 8, 16, 91 + writers);
    table.add_row({fmt(writers), fmt(r.reader_own_cost, 3),
                   fmt(r.writer_own_cost, 2), fmt(r.torn_rate, 6)});
    readers_flat =
        readers_flat && std::abs(r.reader_own_cost - 4.0) < 0.05;
    if (writers == 1) writer_1 = r.writer_own_cost;
    if (writers == 16) writer_16 = r.writer_own_cost;
  }
  table.print(std::cout);
  std::cout << "writer cost growth 1 -> 16 writers: "
            << fmt(writer_16 / writer_1, 2)
            << "x (SCU contention; readers untouched)\n";

  std::cout << "\ngrace-period ablation (4 writers, 8 readers): torn-read "
               "rate vs recycling pool depth:\n";
  Table torn({"pool slots per writer", "torn-read rate"});
  std::vector<double> rates;
  for (std::size_t slots : {1, 2, 4, 8, 32}) {
    const RcuRun r = run(4, 8, slots, 191 + slots);
    torn.add_row({fmt(slots), fmt(r.torn_rate, 6)});
    rates.push_back(r.torn_rate);
  }
  torn.print(std::cout);
  const bool torn_monotone = rates.front() > 0.01 && rates.back() < 1e-4 &&
                             rates.front() > rates.back();

  const bool reproduced =
      readers_flat && writer_16 > 1.3 * writer_1 && torn_monotone;
  bench::print_verdict(
      reproduced,
      "RCU splits exactly as the SCU analysis says: wait-free O(1) reads "
      "independent of contention, sqrt-style writer contention, and the "
      "grace-period requirement visible as soon as blocks recycle early");
  return reproduced ? 0 : 1;
}
