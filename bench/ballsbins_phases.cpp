// Lemmas 8-9 — the iterated balls-into-bins game: phase lengths are
// bounded by min(2 alpha n / sqrt(a_i), 3 alpha n / b_i^(1/3)) and the
// "third range" (a_i < n/c) is rarely visited and quickly escaped.
//
// Runs the game at several n, reports phase-length statistics grouped by
// the paper's three ranges, checks the per-state bound, and prints the
// steady-state distribution of a_i (bins with one ball at phase start).
#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <vector>

#include "ballsbins/game.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::ballsbins;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kTopStates = 8;

std::vector<std::size_t> game_ns(const RunOptions& options) {
  if (options.quick) return {8, 32, 128};
  return {8, 32, 128, 512};
}

class BallsbinsPhases final : public exp::Experiment {
 public:
  std::string name() const override { return "ballsbins_phases"; }
  std::string artifact() const override {
    return "Lemmas 8-9: iterated balls-into-bins phase behaviour";
  }
  std::string claim() const override {
    return "Claim: E[phase | a, b] <= min(2an/sqrt(a), 3an/b^(1/3)) with "
           "a = 4; phases starting in range three (a < n/c) are rare.";
  }
  std::uint64_t default_seed() const override { return 99; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t n : game_ns(options)) {
      Trial t;
      t.id = "n=" + fmt(n);
      t.params = {{"n", static_cast<double>(n)}};
      t.seed = base + n;
      grid.push_back(std::move(t));
    }
    Trial top;
    top.id = "phase-start composition n=128";
    top.params = {{"n", 128.0}, {"composition", 1.0}};
    top.seed = exp::derive_seed(base, 128);
    grid.push_back(std::move(top));
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    IteratedBallsBins game(n, Xoshiro256pp(trial.seed));

    if (trial.params.count("composition")) {
      const auto records =
          game.run_phases(options.horizon(40'000, 8'000));
      std::map<std::size_t, std::uint64_t> start_a_freq;
      for (const auto& rec : records) ++start_a_freq[rec.start_a];
      std::vector<std::pair<std::uint64_t, std::size_t>> sorted;
      for (const auto& [a, count] : start_a_freq) {
        sorted.push_back({count, a});
      }
      std::sort(sorted.rbegin(), sorted.rend());
      Metrics m{{"phases", static_cast<double>(records.size())}};
      for (std::size_t i = 0; i < kTopStates && i < sorted.size(); ++i) {
        const std::string rank = std::to_string(i + 1);
        m["top" + rank + "_a"] = static_cast<double>(sorted[i].second);
        m["top" + rank + "_pct"] =
            100.0 * static_cast<double>(sorted[i].first) /
            static_cast<double>(records.size());
      }
      return m;
    }

    const auto records = game.run_phases(options.horizon(60'000, 8'000));
    RangeStats ranges;
    Histogram lengths(0.0, 40.0 * std::sqrt(static_cast<double>(n)), 200);
    std::map<std::pair<std::size_t, std::size_t>, StreamingStats> by_start;
    StreamingStats overall;
    for (const auto& rec : records) {
      ranges.add(rec, n);
      lengths.add(static_cast<double>(rec.length));
      by_start[{rec.start_a, rec.start_b}].add(
          static_cast<double>(rec.length));
      overall.add(static_cast<double>(rec.length));
    }
    std::size_t violations = 0;
    for (const auto& [start, stats] : by_start) {
      if (stats.count() < 100) continue;
      const double bound = core::theory::phase_length_bound(
          n, start.first, start.second, 4.0);
      if (stats.mean() > bound) ++violations;
    }
    const double total = static_cast<double>(records.size());
    return {{"phases", total},
            {"mean_phase", overall.mean()},
            {"p50", lengths.quantile(0.5)},
            {"p99", lengths.quantile(0.99)},
            {"range1_pct", 100.0 * static_cast<double>(ranges.phases_first) /
                               total},
            {"range2_pct", 100.0 * static_cast<double>(ranges.phases_second) /
                               total},
            {"range3_pct", 100.0 * static_cast<double>(ranges.phases_third) /
                               total},
            {"violations", static_cast<double>(violations)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    Table table({"n", "phases", "mean phase", "p50", "p99", "range1 %",
                 "range2 %", "range3 %", "bound violations"});
    bool reproduced = true;
    const TrialResult* composition = nullptr;
    for (const TrialResult& r : results) {
      if (r.trial.params.count("composition")) {
        composition = &r;
        continue;
      }
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const Metrics& m = r.metrics;
      table.add_row({fmt(n), fmt(m.at("phases"), 0), fmt(m.at("mean_phase"), 2),
                     fmt(m.at("p50"), 1), fmt(m.at("p99"), 1),
                     fmt(m.at("range1_pct"), 2), fmt(m.at("range2_pct"), 2),
                     fmt(m.at("range3_pct"), 2), fmt(m.at("violations"), 0)});
      reproduced = reproduced && m.at("violations") < 0.5 &&
                   m.at("range3_pct") < 1.0;
    }
    table.print(os);

    if (composition) {
      os << "\nphase-start composition at n = 128 (top states):\n";
      Table top({"a at phase start", "frequency %", "n - a (stale+empty)"});
      for (std::size_t i = 1; i <= kTopStates; ++i) {
        const std::string rank = std::to_string(i);
        const auto a_it = composition->metrics.find("top" + rank + "_a");
        const auto pct_it = composition->metrics.find("top" + rank + "_pct");
        if (a_it == composition->metrics.end() ||
            pct_it == composition->metrics.end()) {
          break;
        }
        const auto a = static_cast<std::size_t>(a_it->second);
        top.add_row({fmt(a), fmt(pct_it->second, 2), fmt(128 - a)});
      }
      top.print(os);
    }
    (void)options;

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "per-state phase bounds hold with alpha = 4 and the third range "
        "has < 1% occupancy";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<BallsbinsPhases>());

}  // namespace
