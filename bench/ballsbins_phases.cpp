// Lemmas 8-9 — the iterated balls-into-bins game: phase lengths are
// bounded by min(2 alpha n / sqrt(a_i), 3 alpha n / b_i^(1/3)) and the
// "third range" (a_i < n/c) is rarely visited and quickly escaped.
//
// Runs the game at several n, reports phase-length statistics grouped by
// the paper's three ranges, checks the per-state bound, and prints the
// steady-state distribution of a_i (bins with one ball at phase start).
#include <cmath>
#include <iostream>
#include <algorithm>
#include <map>

#include "ballsbins/game.hpp"
#include "bench_common.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace pwf;
  using namespace pwf::ballsbins;

  bench::print_header(
      "Lemmas 8-9: iterated balls-into-bins phase behaviour",
      "Claim: E[phase | a, b] <= min(2an/sqrt(a), 3an/b^(1/3)) with a = 4; "
      "phases starting in range three (a < n/c) are rare.");
  bench::print_seed(99);

  Table table({"n", "phases", "mean phase", "p50", "p99", "range1 %",
               "range2 %", "range3 %", "bound violations"});
  bool reproduced = true;
  for (std::size_t n : {8, 32, 128, 512}) {
    IteratedBallsBins game(n, Xoshiro256pp(99 + n));
    const auto records = game.run_phases(60'000);

    RangeStats ranges;
    Histogram lengths(0.0, 40.0 * std::sqrt(static_cast<double>(n)), 200);
    std::map<std::pair<std::size_t, std::size_t>, StreamingStats> by_start;
    for (const auto& rec : records) {
      ranges.add(rec, n);
      lengths.add(static_cast<double>(rec.length));
      by_start[{rec.start_a, rec.start_b}].add(
          static_cast<double>(rec.length));
    }

    std::size_t violations = 0;
    for (const auto& [start, stats] : by_start) {
      if (stats.count() < 100) continue;
      const double bound = core::theory::phase_length_bound(
          n, start.first, start.second, 4.0);
      if (stats.mean() > bound) ++violations;
    }

    StreamingStats overall;
    for (const auto& rec : records) {
      overall.add(static_cast<double>(rec.length));
    }
    const double total = static_cast<double>(records.size());
    table.add_row(
        {fmt(n), fmt(records.size()), fmt(overall.mean(), 2),
         fmt(lengths.quantile(0.5), 1), fmt(lengths.quantile(0.99), 1),
         fmt(100.0 * ranges.phases_first / total, 2),
         fmt(100.0 * ranges.phases_second / total, 2),
         fmt(100.0 * ranges.phases_third / total, 2), fmt(violations)});
    reproduced = reproduced && violations == 0 &&
                 static_cast<double>(ranges.phases_third) / total < 0.01;
  }
  table.print(std::cout);

  std::cout << "\nphase-start composition at n = 128 (top states):\n";
  {
    constexpr std::size_t kN = 128;
    IteratedBallsBins game(kN, Xoshiro256pp(5));
    std::map<std::size_t, std::uint64_t> start_a_freq;
    const auto records = game.run_phases(40'000);
    for (const auto& rec : records) ++start_a_freq[rec.start_a];
    Table top({"a at phase start", "frequency %", "n - a (stale+empty)"});
    std::size_t shown = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> sorted;
    for (const auto& [a, count] : start_a_freq) sorted.push_back({count, a});
    std::sort(sorted.rbegin(), sorted.rend());
    for (const auto& [count, a] : sorted) {
      if (++shown > 8) break;
      top.add_row({fmt(a), fmt(100.0 * count / records.size(), 2),
                   fmt(kN - a)});
    }
    top.print(std::cout);
  }

  bench::print_verdict(reproduced,
                       "per-state phase bounds hold with alpha = 4 and the "
                       "third range has < 1% occupancy");
  return reproduced ? 0 : 1;
}
