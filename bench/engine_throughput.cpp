// Engine fast-path throughput: the first tracked steps/sec baseline for
// Simulation::run itself. Every reproduced experiment, the Session
// explorer, and the trace minimizer burn their time in this loop — one
// scheduler draw, one machine step, stats — so the experiment sweeps
// scheduler x n x machine and measures wall-clock steps/sec for:
//
//   * the segmented hot loop vs the legacy per-step-probe loop
//     (LoopMode::legacy, the golden reference) under the uniform
//     scheduler, and
//   * the O(1) Walker/Vose alias sampler vs the O(n) linear-scan
//     reference (SamplingMode::linear) for the weighted scheduler —
//     the lottery/Zipf case where the old per-draw scan cost O(n).
//
// The verdict enforces the engine's perf floor: the alias sampler must
// be >= 5x the linear scan at n = 256 and the segmented loop must not
// be slower than the legacy one on geometric mean across the sweep
// (per-cell wall-clock jitters on a shared host; a real regression
// depresses every cell). scripts/bench_engine.sh serializes the
// full sweep into BENCH_engine.json, the committed baseline later PRs
// regress against.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

enum class Variant : int {
  kUniformSegmented = 0,
  kUniformLegacy = 1,
  kStickySegmented = 2,
  kWeightedAlias = 3,
  kWeightedLinear = 4,
};

constexpr const char* kVariantLabels[] = {
    "uniform/segmented", "uniform/legacy", "sticky/segmented",
    "weighted-alias/segmented", "weighted-linear/segmented"};
constexpr int kNumVariants = 5;

enum class Machine : int { kParallel = 0, kScanValidate = 1 };
constexpr const char* kMachineLabels[] = {"parallel(8)", "scan-validate"};
constexpr int kNumMachines = 2;

const std::vector<std::size_t> kGridN{8, 64, 256};

std::unique_ptr<Scheduler> make_sched(Variant v, std::size_t n) {
  switch (v) {
    case Variant::kUniformSegmented:
    case Variant::kUniformLegacy:
      return std::make_unique<UniformScheduler>();
    case Variant::kStickySegmented:
      return std::make_unique<StickyScheduler>(0.8);
    case Variant::kWeightedAlias:
      return std::make_unique<WeightedScheduler>(
          make_zipf_scheduler(n, 1.1));
    case Variant::kWeightedLinear: {
      std::vector<double> weights(n);
      for (std::size_t i = 0; i < n; ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
      }
      return std::make_unique<WeightedScheduler>(std::move(weights),
                                                 SamplingMode::linear);
    }
  }
  return nullptr;
}

class EngineThroughput final : public exp::Experiment {
 public:
  std::string name() const override { return "engine_throughput"; }
  std::string artifact() const override {
    return "Engine fast path: steps/sec baseline for Simulation::run "
           "(alias vs linear sampling, segmented vs legacy loop)";
  }
  std::string claim() const override {
    return "Claim: the Walker/Vose alias sampler makes weighted "
           "scheduling O(1) per draw (>= 5x steps/sec at n = 256 vs the "
           "linear scan) and the segmented loop is no slower than the "
           "legacy per-step-probe loop (geomean across the sweep).";
  }
  std::uint64_t default_seed() const override { return 20140806; }

  // Wall-clock throughput is the metric: run one trial at a time with
  // the worker pool idle. Exclusive experiments are host-dependent and
  // excluded from the bit-identical determinism guarantee.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (int m = 0; m < kNumMachines; ++m) {
      for (std::size_t ni = 0; ni < kGridN.size(); ++ni) {
        for (int v = 0; v < kNumVariants; ++v) {
          Trial t;
          t.id = std::string(kVariantLabels[v]) + " n=" +
                 std::to_string(kGridN[ni]) + " " + kMachineLabels[m];
          t.params = {{"variant", static_cast<double>(v)},
                      {"n", static_cast<double>(kGridN[ni])},
                      {"machine", static_cast<double>(m)}};
          // One seed per (machine, n), shared by the variants: each
          // comparison times the same workload under the same seed.
          t.seed = exp::derive_seed(base, static_cast<std::uint64_t>(
                                              m * 16 + static_cast<int>(ni)));
          grid.push_back(std::move(t));
        }
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto variant = static_cast<Variant>(
        static_cast<int>(trial.params.at("variant")));
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const auto machine = static_cast<Machine>(
        static_cast<int>(trial.params.at("machine")));
    const std::uint64_t steps = options.horizon(2'000'000, 600'000);

    Simulation::Options opts;
    opts.seed = trial.seed;
    opts.loop_mode = variant == Variant::kUniformLegacy ? LoopMode::legacy
                                                        : LoopMode::segmented;
    StepMachineFactory factory;
    if (machine == Machine::kParallel) {
      opts.num_registers = ParallelCode::registers_required();
      factory = ParallelCode::factory(8);
    } else {
      opts.num_registers = ScuAlgorithm::registers_required(n, 1);
      factory = scan_validate_factory();
    }
    Simulation sim(n, factory, make_sched(variant, n), opts);

    // Warm up caches, the alias table, and the branch predictor outside
    // the timed windows, then take the best of three equal windows: on a
    // shared 1-core host a descheduling stall poisons at most one window
    // instead of the whole measurement. Chunked run() calls follow the
    // same trajectory as one long run, so completions are unaffected.
    sim.run(steps / 20 + 1);
    constexpr int kWindows = 3;
    const std::uint64_t chunk = steps / kWindows;
    double best = 0.0;
    for (int w = 0; w < kWindows; ++w) {
      const auto t0 = std::chrono::steady_clock::now();
      sim.run(chunk);
      const double sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      best = std::max(best, static_cast<double>(chunk) / sec);
    }
    return {{"steps_per_sec", best},
            {"completions", static_cast<double>(sim.report().completions)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    // sps[machine][n-index][variant]
    double sps[kNumMachines][8][kNumVariants] = {};
    for (const TrialResult& r : results) {
      const int v = static_cast<int>(r.trial.params.at("variant"));
      const int m = static_cast<int>(r.trial.params.at("machine"));
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      std::size_t ni = 0;
      while (kGridN[ni] != n) ++ni;
      sps[m][ni][v] = r.metrics.at("steps_per_sec");
    }

    os << "steps/sec by scheduler x loop x n (Msteps/s)\n\n";
    Table table({"machine", "n", "uniform seg", "uniform legacy",
                 "sticky", "alias", "linear", "alias/linear",
                 "seg/legacy"});
    bool reproduced = true;
    double alias_speedup_256 = 0.0;
    double worst_seg_ratio = 1e9;
    double log_seg_sum = 0.0;
    int cells = 0;
    Verdict verdict;
    for (int m = 0; m < kNumMachines; ++m) {
      for (std::size_t ni = 0; ni < kGridN.size(); ++ni) {
        const double* row = sps[m][ni];
        const double alias_speedup =
            row[static_cast<int>(Variant::kWeightedAlias)] /
            row[static_cast<int>(Variant::kWeightedLinear)];
        const double seg_ratio =
            row[static_cast<int>(Variant::kUniformSegmented)] /
            row[static_cast<int>(Variant::kUniformLegacy)];
        worst_seg_ratio = std::min(worst_seg_ratio, seg_ratio);
        log_seg_sum += std::log(seg_ratio);
        ++cells;
        if (kGridN[ni] == 256) {
          alias_speedup_256 = std::max(alias_speedup_256, alias_speedup);
          reproduced = reproduced && alias_speedup >= 5.0;
        }
        table.add_row({kMachineLabels[m], fmt(kGridN[ni]),
                       fmt(row[0] / 1e6, 2), fmt(row[1] / 1e6, 2),
                       fmt(row[2] / 1e6, 2), fmt(row[3] / 1e6, 2),
                       fmt(row[4] / 1e6, 2), fmt(alias_speedup, 2),
                       fmt(seg_ratio, 2)});
        const std::string key_base = std::string(m == 0 ? "par" : "scu") +
                                     "_n" + std::to_string(kGridN[ni]);
        verdict.summary["alias_speedup_" + key_base] = alias_speedup;
        verdict.summary["seg_over_legacy_" + key_base] = seg_ratio;
        verdict.summary["steps_per_sec_" + key_base] = row[0];
      }
    }
    table.print(os);
    os << "\nalias sampler: O(1) two-draw; linear scan: O(n) prefix sum — "
          "the speedup grows with n.\n";

    // Wall-clock ratios jitter per cell (a single descheduling stall on
    // the shared host can sink one of the six windows), so the gate is
    // the geometric mean across the sweep: a segmented loop that truly
    // regressed would depress every cell, not one.
    const double geomean_seg =
        std::exp(log_seg_sum / std::max(cells, 1));
    reproduced = reproduced && geomean_seg >= 0.9;
    verdict.reproduced = reproduced;
    verdict.summary["alias_speedup_n256"] = alias_speedup_256;
    verdict.summary["seg_over_legacy_geomean"] = geomean_seg;
    verdict.summary["worst_seg_over_legacy"] = worst_seg_ratio;
    verdict.detail = "alias " + fmt(alias_speedup_256, 1) +
                     "x over linear scan at n = 256; segmented loop " +
                     fmt(geomean_seg, 2) + "x legacy throughput (geomean)";
    return verdict;
  }
};

const exp::RegisterExperiment reg(std::make_unique<EngineThroughput>());

}  // namespace
