// Soundness of the linearizability pipeline (src/check): every stock
// simulated structure must come out LINEARIZABLE across a matrix of
// randomized schedules and crash plans, and every seeded mutant must be
// caught — with a minimized witness whose strict replay reproduces a
// bit-identical history (fingerprint-stable), independent of the trial
// pool's thread count.
#include <cstdint>
#include <ostream>
#include <vector>

#include "check/explore.hpp"
#include "check/session.hpp"
#include "check/workloads.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kWitnessEventBudget = 20;

class LinSoundness final : public exp::Experiment {
 public:
  std::string name() const override { return "lin_soundness"; }
  std::string artifact() const override {
    return "src/check validation: linearizability checker + record/replay "
           "+ minimizer, stock structures vs seeded mutants";
  }
  std::string claim() const override {
    return "Claim: stock simulated structures are linearizable under every "
           "random schedule/crash plan; seeded mutants are caught with a "
           "replayable witness of at most 20 events.";
  }
  std::uint64_t default_seed() const override { return 20140721; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    const auto& all = check::workloads();
    for (std::size_t w = 0; w < all.size(); ++w) {
      Trial t;
      t.id = all[w].name;
      t.params = {{"workload", static_cast<double>(w)}};
      t.seed = exp::derive_seed(base, w);
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto& workload = check::workloads().at(
        static_cast<std::size_t>(trial.params.at("workload")));
    check::ExploreOptions opts;
    opts.base_seed = trial.seed;
    opts.schedules = options.quick ? 40 : 100;
    const check::Session session(workload, opts.check);
    const check::ExploreResult result = session.explore(opts);

    double witness_events = 0.0;
    double fp_stable = 0.0;
    if (result.witness) {
      witness_events = static_cast<double>(result.witness->history_events);
      // Certify the witness: two independent strict replays must agree on
      // the history fingerprint bit-for-bit (the replay determinism
      // guarantee the minimizer and CI artifacts rely on).
      const auto again = session.replay(result.witness->trace);
      fp_stable = again.history.fingerprint() ==
                          result.witness->history_fingerprint
                      ? 1.0
                      : 0.0;
    }
    const bool expected = result.as_expected(workload.expect_linearizable);
    return {{"schedules", static_cast<double>(result.schedules_run)},
            {"violations", static_cast<double>(result.violations)},
            {"unknowns", static_cast<double>(result.unknowns)},
            {"expect_lin", workload.expect_linearizable ? 1.0 : 0.0},
            {"as_expected", expected ? 1.0 : 0.0},
            {"witness_events", witness_events},
            {"fp_stable", fp_stable}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/,
                  std::ostream& os) const override {
    Table table({"workload", "schedules", "violations", "expected",
                 "witness events", "replay stable?"});
    bool reproduced = true;
    for (const TrialResult& r : results) {
      const Metrics& m = r.metrics;
      const bool expect_lin = exp::flag(m.at("expect_lin"));
      const bool as_expected = exp::flag(m.at("as_expected"));
      const bool caught = m.at("violations") > 0.5;
      const double events = m.at("witness_events");
      const bool fp_ok = exp::flag(m.at("fp_stable"));
      table.add_row({r.trial.id, fmt(m.at("schedules"), 0),
                     fmt(m.at("violations"), 0),
                     expect_lin ? "LINEARIZABLE" : "caught",
                     caught ? fmt(events, 0) : "-",
                     caught ? (fp_ok ? "yes" : "NO") : "-"});
      reproduced = reproduced && as_expected && m.at("unknowns") < 0.5;
      if (!expect_lin) {
        reproduced = reproduced && fp_ok &&
                     events <= static_cast<double>(kWitnessEventBudget);
      }
    }
    table.print(os);

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "stock structures pass every schedule; every mutant yields a "
        "minimized, fingerprint-stable witness within the 20-event budget";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<LinSoundness>());

}  // namespace
