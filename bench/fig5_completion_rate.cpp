// Figure 5 — "Predicted completion rate of the algorithm vs. completion
// rate of the implementation vs. worst-case completion rate" (paper,
// Appendix B).
//
// Workload: the CAS-based fetch-and-increment counter. Three series over
// thread count n:
//   measured   — completion rate (ops / CAS steps) of the real lock-free
//                counter on hardware threads;
//   predicted  — Theta(1/sqrt(n)): exactly 1/Z(n-1) under the uniform
//                stochastic model, scaled to the first data point as the
//                paper does ("we scaled the prediction to the first data
//                point");
//   worst-case — 1/n.
// Additionally the *simulated* counter's rate is printed — it matches the
// prediction without any scaling.
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "lockfree/counter.hpp"
#include "lockfree/harness.hpp"
#include "util/table.hpp"

namespace {

double measured_rate(std::size_t threads) {
  pwf::lockfree::CasCounter counter;
  const auto result = pwf::lockfree::run_throughput(
      threads, std::chrono::milliseconds(250),
      [&](std::size_t) { return counter.fetch_inc().steps; });
  return result.completion_rate();
}

double simulated_rate(std::size_t n, std::uint64_t seed) {
  pwf::core::Simulation::Options opts;
  opts.num_registers = pwf::core::FetchAndIncrement::registers_required();
  opts.seed = seed;
  pwf::core::Simulation sim(n, pwf::core::FetchAndIncrement::factory(),
                            std::make_unique<pwf::core::UniformScheduler>(),
                            opts);
  sim.run(100'000);
  sim.reset_stats();
  sim.run(1'000'000);
  return sim.report().completion_rate();
}

}  // namespace

int main() {
  using namespace pwf;

  bench::print_header(
      "Figure 5: completion rate of the CAS counter vs. thread count",
      "Claim: the measured rate tracks the Theta(1/sqrt n) prediction of "
      "the uniform stochastic model and sits far above the 1/n worst case.");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads available: " << hw << "\n";
  bench::print_seed(77);

  const std::vector<std::size_t> thread_counts{1, 2, 3, 4, 6, 8};
  std::vector<double> measured, simulated, predicted, worst;
  for (std::size_t n : thread_counts) {
    measured.push_back(measured_rate(n));
    simulated.push_back(simulated_rate(n, 77 + n));
    predicted.push_back(core::theory::fai_completion_rate_predicted(n));
    worst.push_back(core::theory::fai_completion_rate_worst_case(n));
  }
  // Scale the prediction to the first hardware data point (paper: "we
  // scaled the prediction to the first data point").
  const double scale = measured[0] / predicted[0];

  Table table({"threads", "measured", "prediction (scaled)",
               "simulated (model)", "prediction 1/Z(n-1)", "worst case 1/n"});
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    table.add_row({fmt(thread_counts[i]), fmt(measured[i], 4),
                   fmt(scale * predicted[i], 4), fmt(simulated[i], 4),
                   fmt(predicted[i], 4), fmt(worst[i], 4)});
  }
  table.print(std::cout);

  // Shape checks.
  bool model_exact = true;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    if (std::abs(simulated[i] - predicted[i]) > 0.05 * predicted[i]) {
      model_exact = false;
    }
  }
  // Hardware: rate decreases with n and beats the worst case clearly for
  // larger n. (On one core, contention is serialized by the OS, so the
  // curve is flatter; the dominance over 1/n is the robust shape.)
  bool decreasing_or_flat = true;
  for (std::size_t i = 1; i < measured.size(); ++i) {
    if (measured[i] > measured[i - 1] * 1.15) decreasing_or_flat = false;
  }
  const bool beats_worst_case =
      measured.back() > 1.5 * worst.back();
  const bool reproduced = model_exact && decreasing_or_flat && beats_worst_case;
  bench::print_verdict(
      reproduced,
      "simulated rate matches 1/Z(n-1) exactly; hardware rate decays "
      "gently and dominates the 1/n worst case, as in the paper's Figure 5");
  return reproduced ? 0 : 1;
}
