// Figure 5 — "Predicted completion rate of the algorithm vs. completion
// rate of the implementation vs. worst-case completion rate" (paper,
// Appendix B).
//
// Workload: the CAS-based fetch-and-increment counter. Three series over
// thread count n:
//   measured   — completion rate (ops / CAS steps) of the real lock-free
//                counter on hardware threads;
//   predicted  — Theta(1/sqrt(n)): exactly 1/Z(n-1) under the uniform
//                stochastic model, scaled to the first data point as the
//                paper does ("we scaled the prediction to the first data
//                point");
//   worst-case — 1/n.
// Additionally the *simulated* counter's rate is printed — it matches the
// prediction without any scaling.
#include <chrono>
#include <cmath>
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "lockfree/counter.hpp"
#include "lockfree/harness.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

double measured_rate(std::size_t threads, const RunOptions& options) {
  pwf::lockfree::CasCounter counter;
  const auto result = pwf::lockfree::run_throughput(
      threads, std::chrono::milliseconds(options.quick ? 100 : 250),
      [&](std::size_t) { return counter.fetch_inc().steps; });
  return result.completion_rate();
}

double simulated_rate(std::size_t n, std::uint64_t seed,
                      const RunOptions& options) {
  pwf::core::Simulation::Options opts;
  opts.num_registers = pwf::core::FetchAndIncrement::registers_required();
  opts.seed = seed;
  pwf::core::Simulation sim(n, pwf::core::FetchAndIncrement::factory(),
                            std::make_unique<pwf::core::UniformScheduler>(),
                            opts);
  sim.run(options.horizon(100'000, 20'000));
  sim.reset_stats();
  sim.run(options.horizon(1'000'000, 150'000));
  return sim.report().completion_rate();
}

class Fig5CompletionRate final : public exp::Experiment {
 public:
  std::string name() const override { return "fig5_completion_rate"; }
  std::string artifact() const override {
    return "Figure 5: completion rate of the CAS counter vs. thread count";
  }
  std::string claim() const override {
    return "Claim: the measured rate tracks the Theta(1/sqrt n) prediction "
           "of the uniform stochastic model and sits far above the 1/n "
           "worst case.";
  }
  std::uint64_t default_seed() const override { return 77; }
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t n : {1, 2, 3, 4, 6, 8}) {
      Trial t;
      t.id = "threads=" + fmt(n);
      t.params = {{"n", static_cast<double>(n)}};
      t.seed = base + n;
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    return {{"measured", measured_rate(n, options)},
            {"simulated", simulated_rate(n, trial.seed, options)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    const unsigned hw = std::thread::hardware_concurrency();
    os << "hardware threads available: " << hw << "\n";

    std::vector<double> measured, simulated, predicted, worst;
    std::vector<std::size_t> thread_counts;
    for (const TrialResult& r : results) {
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      thread_counts.push_back(n);
      measured.push_back(r.metrics.at("measured"));
      simulated.push_back(r.metrics.at("simulated"));
      predicted.push_back(core::theory::fai_completion_rate_predicted(n));
      worst.push_back(core::theory::fai_completion_rate_worst_case(n));
    }
    // Scale the prediction to the first hardware data point (paper: "we
    // scaled the prediction to the first data point").
    const double scale = measured[0] / predicted[0];

    Table table({"threads", "measured", "prediction (scaled)",
                 "simulated (model)", "prediction 1/Z(n-1)",
                 "worst case 1/n"});
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      table.add_row({fmt(thread_counts[i]), fmt(measured[i], 4),
                     fmt(scale * predicted[i], 4), fmt(simulated[i], 4),
                     fmt(predicted[i], 4), fmt(worst[i], 4)});
    }
    table.print(os);

    // Shape checks.
    bool model_exact = true;
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      if (std::abs(simulated[i] - predicted[i]) > 0.05 * predicted[i]) {
        model_exact = false;
      }
    }
    // Hardware: rate decreases with n and beats the worst case clearly for
    // larger n. (On one core, contention is serialized by the OS, so the
    // curve is flatter; the dominance over 1/n is the robust shape.)
    bool decreasing_or_flat = true;
    for (std::size_t i = 1; i < measured.size(); ++i) {
      if (measured[i] > measured[i - 1] * 1.15) decreasing_or_flat = false;
    }
    const bool beats_worst_case = measured.back() > 1.5 * worst.back();

    Verdict v;
    v.reproduced = model_exact && decreasing_or_flat && beats_worst_case;
    v.detail =
        "simulated rate matches 1/Z(n-1) exactly; hardware rate decays "
        "gently and dominates the 1/n worst case, as in the paper's "
        "Figure 5";
    v.summary = {{"model_exact", model_exact ? 1.0 : 0.0},
                 {"beats_worst_case", beats_worst_case ? 1.0 : 0.0}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Fig5CompletionRate>());

}  // namespace
