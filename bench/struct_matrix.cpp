// struct_matrix: the skip-list strategy matrix — throughput and latency
// quantiles of the same abstract sorted-set workload across the three
// synchronization strategies (lockfree/strategy.hpp), three workload
// mixes, and a thread sweep, plus a linearizability gate that runs every
// strategy under every pwf::mem reclamation policy through HwSession.
//
// The paper argues lock-free algorithms behave wait-free under realistic
// schedulers; this experiment supplies the *strategy contrast* that
// claim implicitly leans on: against the identical two-level skip-list
// workload, a single global mutex (coarse) serializes and convoys under
// oversubscription, while the optimistic and lock-free variants keep
// reads out of the serial path entirely. The matrix makes the contrast
// quantitative per mix:
//
//   read-heavy   90% contains /  9% insert /  1% erase
//   mixed        50% contains / 25% insert / 25% erase
//   write-heavy  10% contains / 45% insert / 45% erase
//
// The matrix has three faces:
//
//   * hardware bench cells — wall-clock throughput + per-op latency
//     quantiles on real threads. Host-dependent context: on a one-core
//     host every strategy time-slices onto the same pipeline and the
//     sub-microsecond critical sections almost never span a preemption,
//     so no physical spread can appear there;
//   * simulated cells — the same strategies as SimSkipList step
//     machines under the paper's uniform stochastic scheduler, where
//     parallelism is logical and one process's held lock provably burns
//     every other process's steps. This is the paper's own methodology
//     and the face the cross-strategy spread gate binds on;
//   * linearizability cells — every strategy under every pwf::mem
//     reclamation policy through HwSession.
//
// Verdict: REPRODUCED iff (a) in the simulated read-heavy cells the
// best concurrent strategy completes >= 2x the ops per step of coarse,
// (b) every hardware cell's latency quantiles are ordered
// p50 <= p95 <= p99, (c) all nine (strategy x reclamation policy)
// HwSession captures check LINEARIZABLE, and (d) every hardware cell
// completed its full schedule. With --strategy the sweep is partial and
// the cross-strategy spread is reported, not judged.
//
// scripts/bench_struct_matrix.sh serializes the sweep into
// BENCH_struct_matrix.json.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "check/hw_capture.hpp"
#include "core/scheduler.hpp"
#include "core/sim_skiplist.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "lockfree/ebr.hpp"
#include "lockfree/skiplist.hpp"
#include "mem/reclaimer.hpp"
#include "util/quantile.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;
using lockfree::SyncStrategy;

constexpr std::uint64_t kKeySpace = 128;

struct Mix {
  const char* name;
  std::uint64_t contains_pct;
  std::uint64_t insert_pct;  // remainder after contains+insert is erase
};

constexpr Mix kMixes[] = {
    {"read-heavy", 90, 9},
    {"mixed", 50, 25},
    {"write-heavy", 10, 45},
};

struct CellOut {
  QuantileSketch latency;  ///< per-op wall ns, merged over threads
  std::uint64_t ops = 0;
  double wall_sec = 0.0;
};

/// One timed cell: `threads` real threads hammer a fresh map with the
/// mix, every op individually clocked. The map is pre-filled with the
/// even keys so contains starts at a ~50% hit rate for every strategy.
template <typename Map>
CellOut run_cell(std::size_t threads, const Mix& mix,
                 std::uint64_t ops_per_thread, std::uint64_t seed) {
  auto domain =
      std::make_unique<lockfree::EbrDomain>(threads + 2);
  Map map(*domain);
  {
    mem::Epoch::ThreadHandle handle(*domain);
    for (std::uint64_t k = 2; k <= kKeySpace; k += 2) {
      map.insert(handle, k, k);
    }
  }

  std::vector<std::unique_ptr<QuantileSketch>> sketches(threads);
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    sketches[t] = std::make_unique<QuantileSketch>();
    workers.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < threads) {
        std::this_thread::yield();
      }
      mem::Epoch::ThreadHandle handle(*domain);
      Xoshiro256pp rng(seed + 0x9E3779B97F4A7C15ULL * (t + 1));
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = 1 + rng() % kKeySpace;
        const std::uint64_t roll = rng() % 100;
        const auto a = std::chrono::steady_clock::now();
        if (roll < mix.contains_pct) {
          (void)map.contains(handle, key);
        } else if (roll < mix.contains_pct + mix.insert_pct) {
          (void)map.insert(handle, key, key);
        } else {
          (void)map.erase(handle, key);
        }
        const auto b = std::chrono::steady_clock::now();
        sketches[t]->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count()));
      }
    });
  }
  for (auto& th : workers) th.join();

  CellOut out;
  out.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& s : sketches) out.latency.merge(*s);
  out.ops = out.latency.count();
  return out;
}

CellOut run_strategy(SyncStrategy strategy, std::size_t threads,
                     const Mix& mix, std::uint64_t ops_per_thread,
                     std::uint64_t seed) {
  using K = std::uint64_t;
  switch (strategy) {
    case SyncStrategy::kCoarse:
      return run_cell<lockfree::CoarseSkipListMap<K, K>>(
          threads, mix, ops_per_thread, seed);
    case SyncStrategy::kOptimistic:
      return run_cell<lockfree::OptimisticSkipListMap<K, K>>(
          threads, mix, ops_per_thread, seed);
    case SyncStrategy::kLockFree:
      break;
  }
  return run_cell<lockfree::LockFreeSkipListMap<K, K>>(
      threads, mix, ops_per_thread, seed);
}

const char* strategy_hw_name(SyncStrategy strategy) {
  switch (strategy) {
    case SyncStrategy::kCoarse:
      return "skiplist-coarse";
    case SyncStrategy::kOptimistic:
      return "skiplist-optimistic";
    case SyncStrategy::kLockFree:
      break;
  }
  return "skiplist-lockfree";
}

class StructMatrix final : public exp::Experiment {
 public:
  std::string name() const override { return "struct_matrix"; }
  std::string artifact() const override {
    return "structure matrix: skip-list strategy x workload-mix x threads "
           "throughput/latency sweep + per-reclaim-policy linearizability "
           "gate (lockfree/skiplist.hpp, check/catalog.hpp)";
  }
  std::string claim() const override {
    return "Claim: on the identical skip-list workload under the uniform "
           "stochastic scheduler, the optimistic and lock-free strategies "
           "complete >= 2x the read-heavy ops per step of the coarse "
           "global lock (whose holder serializes every other process), "
           "hardware cells report host throughput with ordered latency "
           "quantiles, and all three strategies check LINEARIZABLE under "
           "all three pwf::mem reclamation policies.";
  }
  std::uint64_t default_seed() const override { return 20140715; }

  // Wall-clock throughput on real threads: run alone, host-dependent.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::uint64_t ops = options.quick ? 4'000 : 25'000;
    std::vector<Trial> grid;
    std::uint64_t idx = 0;
    const auto strategy_selected = [&](SyncStrategy s) {
      return options.strategy.empty() ||
             lockfree::parse_sync_strategy(options.strategy) == s;
    };
    for (const SyncStrategy strategy : lockfree::kAllSyncStrategies) {
      if (!strategy_selected(strategy)) continue;
      for (std::size_t mix = 0; mix < 3; ++mix) {
        for (const std::size_t threads : {1, 2, 4}) {
          Trial t;
          t.id = std::string(lockfree::sync_strategy_name(strategy)) + " " +
                 kMixes[mix].name + " t=" + std::to_string(threads);
          t.params = {{"kind", 0.0},
                      {"strategy", static_cast<double>(strategy)},
                      {"mix", static_cast<double>(mix)},
                      {"threads", static_cast<double>(threads)},
                      {"ops", static_cast<double>(ops)}};
          t.seed = exp::derive_seed(base, idx++);
          grid.push_back(std::move(t));
        }
      }
    }
    // The simulated face: the same strategy x mix grid as SimSkipList
    // step machines under the uniform stochastic scheduler. Logical
    // parallelism makes the coarse lock's serialization visible on any
    // host; the read-heavy spread gate binds on these cells.
    const std::uint64_t steps = options.quick ? 50'000 : 200'000;
    for (const SyncStrategy strategy : lockfree::kAllSyncStrategies) {
      if (!strategy_selected(strategy)) continue;
      for (std::size_t mix = 0; mix < 3; ++mix) {
        Trial t;
        t.id = std::string("sim ") + lockfree::sync_strategy_name(strategy) +
               " " + kMixes[mix].name;
        t.params = {{"kind", 2.0},
                    {"strategy", static_cast<double>(strategy)},
                    {"mix", static_cast<double>(mix)},
                    {"n", 6.0},
                    {"steps", static_cast<double>(steps)}};
        t.seed = exp::derive_seed(base, 2'000 + idx++);
        grid.push_back(std::move(t));
      }
    }
    // The correctness face of the matrix: every strategy column under
    // every reclamation policy, captured and checked by HwSession.
    for (const SyncStrategy strategy : lockfree::kAllSyncStrategies) {
      if (!strategy_selected(strategy)) continue;
      for (const mem::ReclaimPolicy policy : mem::kAllReclaimPolicies) {
        if (!options.reclaim.empty() &&
            mem::parse_reclaim_policy(options.reclaim) != policy) {
          continue;
        }
        Trial t;
        t.id = std::string("lincheck ") +
               lockfree::sync_strategy_name(strategy) + " " +
               mem::reclaim_policy_name(policy);
        t.params = {{"kind", 1.0},
                    {"strategy", static_cast<double>(strategy)},
                    {"reclaim", static_cast<double>(policy)},
                    {"ops", options.quick ? 250.0 : 600.0}};
        t.seed = exp::derive_seed(base, 1'000 + idx++);
        grid.push_back(std::move(t));
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    (void)options;
    const auto strategy = static_cast<SyncStrategy>(
        static_cast<int>(trial.params.at("strategy")));
    if (trial.params.at("kind") < 0.5) {
      const auto mix = static_cast<std::size_t>(trial.params.at("mix"));
      const auto threads =
          static_cast<std::size_t>(trial.params.at("threads"));
      const auto ops = static_cast<std::uint64_t>(trial.params.at("ops"));
      const CellOut r =
          run_strategy(strategy, threads, kMixes[mix], ops, trial.seed);
      return {{"mops_per_sec",
               static_cast<double>(r.ops) / r.wall_sec / 1e6},
              {"p50_ns", static_cast<double>(r.latency.quantile(0.50))},
              {"p95_ns", static_cast<double>(r.latency.quantile(0.95))},
              {"p99_ns", static_cast<double>(r.latency.quantile(0.99))},
              {"ops", static_cast<double>(r.ops)}};
    }
    if (trial.params.at("kind") > 1.5) {
      const auto mix = static_cast<std::size_t>(trial.params.at("mix"));
      const auto n = static_cast<std::size_t>(trial.params.at("n"));
      const auto steps =
          static_cast<std::uint64_t>(trial.params.at("steps"));
      core::SimSkipListConfig config;
      config.strategy = strategy;
      config.key_space = 3;
      config.contains_pct = kMixes[mix].contains_pct;
      config.insert_pct = kMixes[mix].insert_pct;
      core::Simulation::Options opt;
      opt.num_registers = core::SimSkipList::registers_required(n, config);
      opt.seed = trial.seed;
      core::Simulation sim(n, core::SimSkipList::factory(config),
                           std::make_unique<core::UniformScheduler>(), opt);
      sim.run(steps);
      const core::LatencyReport& report = sim.report();
      return {{"sim_completions", static_cast<double>(report.completions)},
              {"sim_ops_per_kstep",
               static_cast<double>(report.completions) /
                   static_cast<double>(steps) * 1'000.0}};
    }
    check::HwOptions hw;
    hw.threads = 4;
    hw.ops_per_thread =
        static_cast<std::size_t>(trial.params.at("ops"));
    hw.bursts = 2;
    hw.seed = trial.seed;
    hw.reclaim = static_cast<mem::ReclaimPolicy>(
        static_cast<int>(trial.params.at("reclaim")));
    check::HwSession session(strategy_hw_name(strategy), hw, {});
    const check::HwResult& r = session.run();
    const bool ok =
        r.lin.verdict == check::LinVerdict::kLinearizable && !r.lin.timed_out;
    return {{"linearizable", ok ? 1.0 : 0.0},
            {"checked_ops", static_cast<double>(r.history.size())}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override;
};

Verdict StructMatrix::analyze(const std::vector<TrialResult>& results,
                              const RunOptions& options,
                              std::ostream& os) const {
  (void)options;
  Verdict verdict;
  Table bench({"strategy", "mix", "threads", "Mops/s", "p50 ns", "p95 ns",
               "p99 ns"});
  Table sim({"strategy", "mix", "completions", "ops/kstep"});
  Table lin({"strategy", "reclaim", "checked ops", "verdict"});

  // throughput[strategy][mix] at the widest thread count seen.
  double throughput[3][3] = {};
  double widest[3][3] = {};
  // sim_throughput[strategy][mix]: completed ops per 1000 scheduler
  // steps under the uniform stochastic scheduler.
  double sim_throughput[3][3] = {};
  bool monotone = true;
  bool complete = true;
  bool lin_ok = true;
  std::size_t lin_cells = 0;
  std::size_t strategies_seen_mask = 0;

  for (const TrialResult& r : results) {
    const Metrics& m = r.metrics;
    const auto strategy = static_cast<SyncStrategy>(
        static_cast<int>(r.trial.params.at("strategy")));
    const int s = static_cast<int>(strategy);
    if (r.trial.params.at("kind") < 0.5) {
      const auto mix = static_cast<std::size_t>(r.trial.params.at("mix"));
      const double threads = r.trial.params.at("threads");
      strategies_seen_mask |= 1u << s;
      bench.add_row({lockfree::sync_strategy_name(strategy),
                     kMixes[mix].name, fmt(threads, 0),
                     fmt(m.at("mops_per_sec"), 3), fmt(m.at("p50_ns"), 0),
                     fmt(m.at("p95_ns"), 0), fmt(m.at("p99_ns"), 0)});
      monotone = monotone && m.at("p50_ns") <= m.at("p95_ns") &&
                 m.at("p95_ns") <= m.at("p99_ns");
      complete = complete &&
                 m.at("ops") >= r.trial.params.at("ops") * threads;
      if (threads >= widest[s][mix]) {
        widest[s][mix] = threads;
        throughput[s][mix] = m.at("mops_per_sec");
      }
      const std::string tag =
          std::string(lockfree::sync_strategy_name(strategy)) + "_" +
          kMixes[mix].name + "_t" +
          std::to_string(static_cast<int>(threads));
      verdict.summary["mops_" + tag] = m.at("mops_per_sec");
      verdict.summary["p99_ns_" + tag] = m.at("p99_ns");
    } else if (r.trial.params.at("kind") > 1.5) {
      const auto mix = static_cast<std::size_t>(r.trial.params.at("mix"));
      sim_throughput[s][mix] = m.at("sim_ops_per_kstep");
      sim.add_row({lockfree::sync_strategy_name(strategy), kMixes[mix].name,
                   fmt(m.at("sim_completions"), 0),
                   fmt(m.at("sim_ops_per_kstep"), 1)});
      verdict.summary[std::string("sim_ops_per_kstep_") +
                      lockfree::sync_strategy_name(strategy) + "_" +
                      kMixes[mix].name] = m.at("sim_ops_per_kstep");
    } else {
      const auto policy = static_cast<mem::ReclaimPolicy>(
          static_cast<int>(r.trial.params.at("reclaim")));
      const bool ok = exp::flag(m.at("linearizable"));
      lin_ok = lin_ok && ok;
      ++lin_cells;
      lin.add_row({lockfree::sync_strategy_name(strategy),
                   mem::reclaim_policy_name(policy),
                   fmt(m.at("checked_ops"), 0),
                   ok ? "LINEARIZABLE" : "VIOLATION"});
    }
  }

  os << "skip-list strategy matrix (key space " << kKeySpace
     << ", pre-filled 50%) — hardware cells, host-dependent\n\n";
  bench.print(os);
  os << "\nsimulated cells: SimSkipList under the uniform stochastic "
        "scheduler (n=6, key space 3); the spread gate binds here\n\n";
  sim.print(os);
  os << "\nlinearizability gate: 4-thread HwSession captures per "
        "(strategy, reclamation policy) cell\n\n";
  lin.print(os);

  const int co = static_cast<int>(SyncStrategy::kCoarse);
  const int op = static_cast<int>(SyncStrategy::kOptimistic);
  const int lf = static_cast<int>(SyncStrategy::kLockFree);
  const double best_concurrent =
      std::max(sim_throughput[op][0], sim_throughput[lf][0]);
  const double spread =
      best_concurrent / std::max(sim_throughput[co][0], 1e-9);
  const double hw_spread =
      std::max(throughput[op][0], throughput[lf][0]) /
      std::max(throughput[co][0], 1e-9);
  verdict.summary["read_heavy_spread"] = spread;
  verdict.summary["hw_read_heavy_spread"] = hw_spread;
  verdict.summary["lin_cells"] = static_cast<double>(lin_cells);
  verdict.summary["quantiles_monotone"] = monotone ? 1.0 : 0.0;

  const bool full_sweep = strategies_seen_mask == 0b111u;
  if (!full_sweep) {
    // --strategy restricted the sweep: the cross-strategy spread cannot
    // be judged; report shape of what did run.
    verdict.reproduced = monotone && complete && lin_ok;
    verdict.detail =
        "partial sweep (--strategy): cross-strategy spread not judged";
    return verdict;
  }

  verdict.reproduced = spread >= 2.0 && monotone && complete && lin_ok;
  verdict.detail =
      "simulated read-heavy spread (best concurrent / coarse) " +
      fmt(spread, 2) + "x (hw cells " + fmt(hw_spread, 2) +
      "x, host-dependent); quantiles " +
      (monotone ? "ordered" : "NOT ordered") + "; " +
      std::to_string(lin_cells) + " lin cells " +
      (lin_ok ? "all LINEARIZABLE" : "WITH VIOLATIONS");
  return verdict;
}

const exp::RegisterExperiment reg(std::make_unique<StructMatrix>());

}  // namespace
