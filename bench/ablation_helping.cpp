// Ablation — the cost of helping (the design choice the paper's
// introduction turns on): "If one could simply rely on the scheduler,
// adding a helping mechanism to guarantee wait-freedom would be
// unnecessary."
//
// Compares plain lock-free scan-validate against the wait-free helped
// universal construction (core/helping.hpp), under (a) the uniform
// stochastic scheduler, where helping is pure overhead, and (b) a
// starvation adversary, where helping is the only thing keeping victims
// alive. Prints mean and tail latencies for both algorithms under both
// schedulers — the quantified version of the paper's thesis.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/helping.hpp"
#include "core/latency.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

constexpr std::size_t kN = 8;
constexpr std::uint64_t kSteps = 2'000'000;

AdversarialScheduler::Strategy starving_strategy() {
  constexpr std::uint64_t kGap = 500;
  return [](std::uint64_t tau, std::span<const std::size_t> active) {
    if (active.size() > 1 && tau % kGap == 0) {
      return active[(tau / kGap) % (active.size() - 1)];
    }
    return active.back();
  };
}

struct Measured {
  double w = 0.0;               // system latency
  double mean_individual = 0.0; // mean per-op latency
  double p99 = 0.0;             // 99th percentile per-op latency
  bool everyone_completed = false;
  std::uint64_t starving = 0;
};

Measured run(bool helped, bool adversarial, std::uint64_t seed) {
  Simulation::Options opts;
  opts.seed = seed;
  StepMachineFactory factory;
  if (helped) {
    constexpr std::size_t kCells = 400'000;
    opts.num_registers = HelpedUniversal::registers_required(kN, kCells);
    factory = HelpedUniversal::factory(kCells);
  } else {
    opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
    factory = scan_validate_factory();
  }
  std::unique_ptr<Scheduler> sched;
  if (adversarial) {
    sched = std::make_unique<AdversarialScheduler>(starving_strategy());
  } else {
    sched = std::make_unique<UniformScheduler>();
  }
  Simulation sim(kN, factory, std::move(sched), opts);
  LatencyDistributionObserver latencies(kN, 1e6, 10'000);
  ProgressTracker progress(kN);

  // Chain the two observers through a tiny fan-out.
  struct FanOut final : SimObserver {
    SimObserver* a;
    SimObserver* b;
    void on_step(std::uint64_t tau, std::size_t p, bool c) override {
      a->on_step(tau, p, c);
      b->on_step(tau, p, c);
    }
  } fan{};
  fan.a = &latencies;
  fan.b = &progress;
  sim.set_observer(&fan);
  sim.run(kSteps);

  Measured m;
  m.w = sim.report().system_latency();
  m.mean_individual = latencies.stats().mean();
  m.p99 = latencies.histogram().total()
              ? latencies.histogram().quantile(0.99)
              : 0.0;
  m.everyone_completed = progress.every_process_completed();
  m.starving = progress.starving(kSteps / 2).size();
  return m;
}

std::string yn(bool b) { return b ? "yes" : "NO"; }

}  // namespace

int main() {
  bench::print_header(
      "Ablation: lock-free vs wait-free (helping) across schedulers",
      "Claim: under the stochastic scheduler helping buys nothing and "
      "costs latency; only against an adversary does it matter.");
  bench::print_seed(31);
  std::cout << "n = " << kN << ", horizon = " << kSteps << " steps\n\n";

  const Measured lf_uniform = run(false, false, 31);
  const Measured wf_uniform = run(true, false, 31);
  const Measured lf_adv = run(false, true, 31);
  const Measured wf_adv = run(true, true, 31);

  Table table({"algorithm", "scheduler", "system W", "mean op latency",
               "p99 op latency", "everyone completes?", "starving"});
  auto add = [&](const std::string& alg, const std::string& sched,
                 const Measured& m) {
    table.add_row({alg, sched, fmt(m.w, 2), fmt(m.mean_individual, 1),
                   fmt(m.p99, 1), yn(m.everyone_completed),
                   fmt(m.starving)});
  };
  add("lock-free scan-validate", "uniform", lf_uniform);
  add("wait-free (helping)", "uniform", wf_uniform);
  add("lock-free scan-validate", "starving adversary", lf_adv);
  add("wait-free (helping)", "starving adversary", wf_adv);
  table.print(std::cout);

  std::cout << "\nhelping overhead under the uniform scheduler: "
            << fmt(wf_uniform.w / lf_uniform.w, 2) << "x system latency, "
            << fmt(wf_uniform.mean_individual / lf_uniform.mean_individual, 2)
            << "x mean op latency\n";

  const bool reproduced =
      // Uniform: both are practically wait-free; helping is slower.
      lf_uniform.everyone_completed && wf_uniform.everyone_completed &&
      wf_uniform.w > 1.2 * lf_uniform.w &&
      // Adversary: helping is the only survivor.
      !lf_adv.everyone_completed && wf_adv.everyone_completed &&
      wf_adv.starving == 0;
  bench::print_verdict(
      reproduced,
      "under the stochastic scheduler the lock-free algorithm already "
      "behaves wait-free and the helping mechanism only adds cost; the "
      "adversary that justifies helping is exactly the schedule real "
      "systems do not produce");
  return reproduced ? 0 : 1;
}
