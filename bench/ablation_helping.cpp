// Ablation — the cost of helping (the design choice the paper's
// introduction turns on): "If one could simply rely on the scheduler,
// adding a helping mechanism to guarantee wait-freedom would be
// unnecessary."
//
// Compares plain lock-free scan-validate against the wait-free helped
// universal construction (core/helping.hpp), under (a) the uniform
// stochastic scheduler, where helping is pure overhead, and (b) a
// starvation adversary, where helping is the only thing keeping victims
// alive. Prints mean and tail latencies for both algorithms under both
// schedulers — the quantified version of the paper's thesis.
#include <cmath>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/helping.hpp"
#include "core/latency.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kN = 8;

AdversarialScheduler::Strategy starving_strategy() {
  constexpr std::uint64_t kGap = 500;
  return [](std::uint64_t tau, std::span<const std::size_t> active) {
    if (active.size() > 1 && tau % kGap == 0) {
      return active[(tau / kGap) % (active.size() - 1)];
    }
    return active.back();
  };
}

std::string yn(bool b) { return b ? "yes" : "NO"; }

class AblationHelping final : public exp::Experiment {
 public:
  std::string name() const override { return "ablation_helping"; }
  std::string artifact() const override {
    return "Ablation: lock-free vs wait-free (helping) across schedulers";
  }
  std::string claim() const override {
    return "Claim: under the stochastic scheduler helping buys nothing and "
           "costs latency; only against an adversary does it matter.";
  }
  std::uint64_t default_seed() const override { return 31; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (int adversarial : {0, 1}) {
      for (int helped : {0, 1}) {
        Trial t;
        t.id = std::string(helped ? "wait-free (helping)"
                                  : "lock-free scan-validate") +
               (adversarial ? " / starving adversary" : " / uniform");
        t.params = {{"helped", static_cast<double>(helped)},
                    {"adversarial", static_cast<double>(adversarial)}};
        t.seed = base;
        grid.push_back(std::move(t));
      }
    }
    (void)options;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const bool helped = exp::flag(trial.params.at("helped"));
    const bool adversarial = exp::flag(trial.params.at("adversarial"));
    const std::uint64_t steps = options.horizon(2'000'000, 400'000);
    Simulation::Options opts;
    opts.seed = trial.seed;
    StepMachineFactory factory;
    if (helped) {
      constexpr std::size_t kCells = 400'000;
      opts.num_registers = HelpedUniversal::registers_required(kN, kCells);
      factory = HelpedUniversal::factory(kCells);
    } else {
      opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
      factory = scan_validate_factory();
    }
    std::unique_ptr<Scheduler> sched;
    if (adversarial) {
      sched = std::make_unique<AdversarialScheduler>(starving_strategy());
    } else {
      sched = std::make_unique<UniformScheduler>();
    }
    Simulation sim(kN, factory, std::move(sched), opts);
    LatencyDistributionObserver latencies(kN, 1e6, 10'000);
    ProgressTracker progress(kN);

    // Chain the two observers through a tiny fan-out.
    struct FanOut final : SimObserver {
      SimObserver* a;
      SimObserver* b;
      void on_step(std::uint64_t tau, std::size_t p, bool c) override {
        a->on_step(tau, p, c);
        b->on_step(tau, p, c);
      }
    } fan{};
    fan.a = &latencies;
    fan.b = &progress;
    sim.set_observer(&fan);
    sim.run(steps);

    return {{"w", sim.report().system_latency()},
            {"mean_individual", latencies.stats().mean()},
            {"p99", latencies.histogram().total()
                        ? latencies.histogram().quantile(0.99)
                        : 0.0},
            {"everyone_completed",
             progress.every_process_completed() ? 1.0 : 0.0},
            {"starving",
             static_cast<double>(progress.starving(steps / 2).size())}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    os << "n = " << kN << ", horizon = "
       << options.horizon(2'000'000, 400'000) << " steps\n\n";

    auto result_at = [&](bool helped, bool adversarial) -> const Metrics& {
      for (const TrialResult& r : results) {
        if (exp::flag(r.trial.params.at("helped")) == helped &&
            exp::flag(r.trial.params.at("adversarial")) == adversarial) {
          return r.metrics;
        }
      }
      throw std::logic_error("ablation_helping: missing trial");
    };
    const Metrics& lf_uniform = result_at(false, false);
    const Metrics& wf_uniform = result_at(true, false);
    const Metrics& lf_adv = result_at(false, true);
    const Metrics& wf_adv = result_at(true, true);

    Table table({"algorithm", "scheduler", "system W", "mean op latency",
                 "p99 op latency", "everyone completes?", "starving"});
    auto add = [&](const std::string& alg, const std::string& sched,
                   const Metrics& m) {
      table.add_row({alg, sched, fmt(m.at("w"), 2),
                     fmt(m.at("mean_individual"), 1), fmt(m.at("p99"), 1),
                     yn(exp::flag(m.at("everyone_completed"))),
                     fmt(m.at("starving"), 0)});
    };
    add("lock-free scan-validate", "uniform", lf_uniform);
    add("wait-free (helping)", "uniform", wf_uniform);
    add("lock-free scan-validate", "starving adversary", lf_adv);
    add("wait-free (helping)", "starving adversary", wf_adv);
    table.print(os);

    os << "\nhelping overhead under the uniform scheduler: "
       << fmt(wf_uniform.at("w") / lf_uniform.at("w"), 2)
       << "x system latency, "
       << fmt(wf_uniform.at("mean_individual") /
                  lf_uniform.at("mean_individual"),
              2)
       << "x mean op latency\n";

    Verdict v;
    v.reproduced =
        // Uniform: both are practically wait-free; helping is slower.
        exp::flag(lf_uniform.at("everyone_completed")) &&
        exp::flag(wf_uniform.at("everyone_completed")) &&
        wf_uniform.at("w") > 1.2 * lf_uniform.at("w") &&
        // Adversary: helping is the only survivor.
        !exp::flag(lf_adv.at("everyone_completed")) &&
        exp::flag(wf_adv.at("everyone_completed")) &&
        wf_adv.at("starving") < 0.5;
    v.detail =
        "under the stochastic scheduler the lock-free algorithm already "
        "behaves wait-free and the helping mechanism only adds cost; the "
        "adversary that justifies helping is exactly the schedule real "
        "systems do not produce";
    v.summary = {{"helping_overhead_w",
                  wf_uniform.at("w") / lf_uniform.at("w")}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<AblationHelping>());

}  // namespace
