// Lemma 11 — parallel code (Algorithm 4): the system latency is exactly q
// and the individual latency is exactly n*q; the individual chain's
// stationary distribution is uniform.
//
// Sweep over (n, q): exact chain values, simulated values, and closed
// forms side by side.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Result {
  double w;
  double wi_worst;
};

Result simulate(std::size_t n, std::size_t q, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = ParallelCode::registers_required();
  opts.seed = seed;
  Simulation sim(n, ParallelCode::factory(q),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  sim.reset_stats();
  sim.run(1'000'000);
  return {sim.report().system_latency(),
          sim.report().max_individual_latency()};
}

}  // namespace

int main() {
  bench::print_header(
      "Lemma 11: parallel code has W = q and W_i = n*q exactly",
      "Claim: with no contention the lifting gives exact latencies, the "
      "baseline against which the sqrt(n) contention factor is visible.");
  bench::print_seed(3);

  Table table({"n", "q", "W exact chain", "W simulated", "W predicted",
               "max W_i simulated", "W_i predicted"});
  bool reproduced = true;
  for (std::size_t n : {2, 4, 8}) {
    for (std::size_t q : {1, 3, 8}) {
      const double w_chain =
          markov::system_latency(markov::build_parallel_system_chain(n, q));
      const Result r = simulate(n, q, 3 + 13 * n + q);
      const double w_pred = theory::parallel_system_latency(q);
      const double wi_pred = theory::parallel_individual_latency(n, q);
      table.add_row({fmt(n), fmt(q), fmt(w_chain, 4), fmt(r.w, 4),
                     fmt(w_pred, 1), fmt(r.wi_worst, 2), fmt(wi_pred, 1)});
      reproduced = reproduced && std::abs(w_chain - w_pred) < 1e-6 &&
                   std::abs(r.w - w_pred) < 0.02 * w_pred &&
                   std::abs(r.wi_worst - wi_pred) < 0.10 * wi_pred;
    }
  }
  table.print(std::cout);

  bench::print_verdict(reproduced,
                       "W = q and W_i = n*q hold exactly in the chain and "
                       "within noise in simulation");
  return reproduced ? 0 : 1;
}
