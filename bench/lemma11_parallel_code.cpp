// Lemma 11 — parallel code (Algorithm 4): the system latency is exactly q
// and the individual latency is exactly n*q; the individual chain's
// stationary distribution is uniform.
//
// Sweep over (n, q): exact chain values, simulated values, and closed
// forms side by side.
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

class Lemma11ParallelCode final : public exp::Experiment {
 public:
  std::string name() const override { return "lemma11_parallel_code"; }
  std::string artifact() const override {
    return "Lemma 11: parallel code has W = q and W_i = n*q exactly";
  }
  std::string claim() const override {
    return "Claim: with no contention the lifting gives exact latencies, "
           "the baseline against which the sqrt(n) contention factor is "
           "visible.";
  }
  std::uint64_t default_seed() const override { return 3; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t n : {2, 4, 8}) {
      for (std::size_t q : {1, 3, 8}) {
        Trial t;
        t.id = "n=" + fmt(n) + " q=" + fmt(q);
        t.params = {{"n", static_cast<double>(n)},
                    {"q", static_cast<double>(q)}};
        t.seed = base + 13 * n + q;
        grid.push_back(std::move(t));
      }
    }
    (void)options;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const auto q = static_cast<std::size_t>(trial.params.at("q"));
    Simulation::Options opts;
    opts.num_registers = ParallelCode::registers_required();
    opts.seed = trial.seed;
    Simulation sim(n, ParallelCode::factory(q),
                   std::make_unique<UniformScheduler>(), opts);
    sim.run(options.horizon(100'000, 20'000));
    sim.reset_stats();
    sim.run(options.horizon(1'000'000, 250'000));
    return {{"w_chain", markov::system_latency(
                            markov::build_parallel_system_chain(n, q))},
            {"w_sim", sim.report().system_latency()},
            {"wi_worst", sim.report().max_individual_latency()}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    Table table({"n", "q", "W exact chain", "W simulated", "W predicted",
                 "max W_i simulated", "W_i predicted"});
    bool reproduced = true;
    for (const TrialResult& r : results) {
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const auto q = static_cast<std::size_t>(r.trial.params.at("q"));
      const Metrics& m = r.metrics;
      const double w_pred = theory::parallel_system_latency(q);
      const double wi_pred = theory::parallel_individual_latency(n, q);
      table.add_row({fmt(n), fmt(q), fmt(m.at("w_chain"), 4),
                     fmt(m.at("w_sim"), 4), fmt(w_pred, 1),
                     fmt(m.at("wi_worst"), 2), fmt(wi_pred, 1)});
      reproduced = reproduced && std::abs(m.at("w_chain") - w_pred) < 1e-6 &&
                   std::abs(m.at("w_sim") - w_pred) < 0.02 * w_pred &&
                   std::abs(m.at("wi_worst") - wi_pred) < 0.10 * wi_pred;
    }
    table.print(os);

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "W = q and W_i = n*q hold exactly in the chain and within noise in "
        "simulation";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Lemma11ParallelCode>());

}  // namespace
