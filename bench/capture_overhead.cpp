// Hardware capture stamping overhead: global-ticket vs calibrated-TSC
// clocks (src/check/hw_capture, src/util/tsc). Three cell families:
//
//  - overhead: lin-point captures with checking disabled, against the
//    stamping-compiled-out baseline (hw_uninstrumented_burst_ms), over
//    structures x thread counts x clocks. The metric is per-op stamping
//    cost in ns; the claim is that tsc stamping — zero shared writes —
//    escapes the ticket counter's cache-line serialization as threads
//    are added.
//  - lincheck: every stock structure captured under --clock tsc with
//    full lin-point stamping and every reclamation policy, checked. The
//    epsilon-widened, rank-compressed intervals must reproduce the
//    LINEARIZABLE verdicts of the golden ticket clock.
//  - mutant (PWF_HW_MUTANTS builds): the untagged-ABA stack and the
//    novalidate skip list must stay NOT-LINEARIZABLE under tsc, with
//    minimized witnesses — widening must not mask real violations.
//
// The 4x overhead-ratio gate needs real cross-core cache-line traffic:
// on a 1-CPU host threads never contend on the ticket line concurrently
// (an uncontended lock xadd is cheaper than rdtsc there), so the gate
// degrades to tsc parity with ticket and the table documents the host
// CPU count that forced the degradation.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/hw_capture.hpp"
#include "check/lin_check.hpp"
#include "exp/registry.hpp"
#include "mem/reclaimer.hpp"
#include "util/table.hpp"
#include "util/tsc.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr double kCellOverhead = 0.0;
constexpr double kCellLincheck = 1.0;
constexpr double kCellMutant = 2.0;

const std::vector<std::string>& overhead_structures() {
  static const std::vector<std::string> kStructures = {
      "treiber-stack", "ms-queue", "cas-counter", "skiplist-lockfree"};
  return kStructures;
}

std::vector<std::size_t> thread_counts(const RunOptions& options) {
  return options.quick ? std::vector<std::size_t>{2, 4}
                       : std::vector<std::size_t>{1, 2, 4, 8};
}

constexpr mem::ReclaimPolicy kPolicies[] = {mem::ReclaimPolicy::kEpoch,
                                            mem::ReclaimPolicy::kHazardEra,
                                            mem::ReclaimPolicy::kPool};

/// Plain atomic counters take no reclamation domain: sweeping policies
/// over them would re-run the identical capture three times.
bool ignores_reclaim(const std::string& structure) {
  return structure == "cas-counter" || structure == "faa-counter";
}

class CaptureOverhead final : public exp::Experiment {
 public:
  std::string name() const override { return "capture_overhead"; }
  std::string artifact() const override {
    return "hardware capture stamping overhead: global-ticket vs "
           "calibrated-TSC clocks, with tsc verdict parity over the stock "
           "zoo and mutant catches (src/check/hw_capture, src/util/tsc)";
  }
  std::string claim() const override {
    return "Claim: contention-free TSC stamping beats the serializing "
           "ticket counter at the max thread count (>= 4x lower per-op "
           "overhead with >= 4 cpus; within-2.5x parity on a serial "
           "host, where nothing contends), with every stock structure "
           "still LINEARIZABLE under --clock tsc for every reclamation "
           "policy and the mutants still caught.";
  }
  std::uint64_t default_seed() const override { return 20260809; }

  // Real-thread wall-clock captures; must own the machine.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;

    for (std::size_t s = 0; s < overhead_structures().size(); ++s) {
      for (const std::size_t threads : thread_counts(options)) {
        for (const double clock : {0.0, 1.0}) {
          const char* clock_name = clock == 0.0 ? "ticket" : "tsc";
          if (!options.clock.empty() && options.clock != clock_name) continue;
          Trial t;
          t.id = "ovh " + overhead_structures()[s] + " t" +
                 std::to_string(threads) + " " + clock_name;
          t.params = {{"cell", kCellOverhead},
                      {"structure", static_cast<double>(s)},
                      {"threads", static_cast<double>(threads)},
                      {"clock", clock}};
          // One seed per (structure, threads): both clocks replay the
          // same seed-deterministic op mix.
          t.seed = exp::derive_seed(base, s * 64 + threads);
          grid.push_back(std::move(t));
        }
      }
    }

    const auto& registry = check::HwSession::registry();
    for (std::size_t s = 0; s < registry.size(); ++s) {
      const check::HwStructure& structure = registry[s];
      if (!structure.expect_linearizable) continue;  // mutants below
      for (std::size_t p = 0; p < 3; ++p) {
        if (p > 0 && ignores_reclaim(structure.name)) continue;
        const char* policy_name = mem::reclaim_policy_name(kPolicies[p]);
        if (!options.reclaim.empty() && options.reclaim != policy_name) {
          continue;
        }
        Trial t;
        t.id = "lin " + structure.name + " " + policy_name;
        t.params = {{"cell", kCellLincheck},
                    {"structure", static_cast<double>(s)},
                    {"reclaim", static_cast<double>(p)}};
        t.seed = exp::derive_seed(base, 4096 + s * 8 + p);
        grid.push_back(std::move(t));
      }
    }

#ifdef PWF_HW_MUTANTS
    std::size_t m = 0;
    for (std::size_t s = 0; s < registry.size(); ++s) {
      if (registry[s].expect_linearizable) continue;
      Trial t;
      t.id = "mut " + registry[s].name;
      t.params = {{"cell", kCellMutant},
                  {"structure", static_cast<double>(s)}};
      t.seed = exp::derive_seed(base, 8192 + m++);
      grid.push_back(std::move(t));
    }
#endif
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto& registry = check::HwSession::registry();
    const double cell = trial.params.at("cell");

    if (cell == kCellOverhead) {
      const auto s = static_cast<std::size_t>(trial.params.at("structure"));
      check::HwOptions hw;
      hw.threads = static_cast<std::size_t>(trial.params.at("threads"));
      hw.ops_per_thread = options.quick ? 400 : 2'000;
      hw.bursts = options.quick ? 2 : 4;
      hw.seed = trial.seed;
      hw.stamp = check::StampMode::kLinPoint;
      hw.clock = trial.params.at("clock") == 0.0 ? check::ClockMode::kTicket
                                                 : check::ClockMode::kTsc;
      hw.check_history = false;  // timing only
      hw.minimize_witness = false;

      // Overhead = instr - base is a difference of two noisy timings;
      // on a small host scheduler interference dwarfs the ~10-100 ns/op
      // signal. Repeat both measurements (same seeds, so the identical
      // op mix every time) and keep the minimum — the run with the
      // least interference — per side, the standard estimator for
      // microbenchmark floors.
      const std::size_t reps = options.quick ? 3 : 5;
      double instr_ms = 0.0, base_ms = 0.0;
      double ops = 0.0, epsilon = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        check::HwSession session(overhead_structures()[s], hw);
        const check::HwResult& r = session.run();
        if (rep == 0 || r.capture_ms < instr_ms) instr_ms = r.capture_ms;
        ops = static_cast<double>(r.total_ops);
        epsilon = static_cast<double>(r.calibration.epsilon);

        double rep_base_ms = 0.0;
        for (std::size_t b = 0; b < hw.bursts; ++b) {
          rep_base_ms += check::hw_uninstrumented_burst_ms(
              overhead_structures()[s], hw,
              hw.seed + 0xD1B54A32D192ED03ULL * b);
        }
        if (rep == 0 || rep_base_ms < base_ms) base_ms = rep_base_ms;
      }
      const double instr_ns = instr_ms * 1e6 / ops;
      const double base_ns = base_ms * 1e6 / ops;
      return {{"instr_ns", instr_ns},
              {"base_ns", base_ns},
              {"overhead_ns", std::max(0.0, instr_ns - base_ns)},
              {"operations", ops},
              {"epsilon", epsilon}};
    }

    if (cell == kCellLincheck) {
      const auto s = static_cast<std::size_t>(trial.params.at("structure"));
      const auto p = static_cast<std::size_t>(trial.params.at("reclaim"));
      check::HwOptions hw;
      hw.threads = 4;
      hw.ops_per_thread = options.quick ? 300 : 800;
      hw.bursts = 2;
      hw.seed = trial.seed;
      hw.stamp = check::StampMode::kLinPoint;
      hw.clock = check::ClockMode::kTsc;
      hw.reclaim = kPolicies[p];
      check::HwSession session(registry[s].name, hw);
      const check::HwResult& r = session.run();
      return {{"linearizable",
               r.lin.verdict == check::LinVerdict::kLinearizable ? 1.0 : 0.0},
              {"operations", static_cast<double>(r.total_ops)},
              {"stamped_frac",
               r.total_ops == 0 ? 0.0
                                : static_cast<double>(r.stamped_ops) /
                                      static_cast<double>(r.total_ops)}};
    }

    // Mutant cell: the violation must survive epsilon widening, and the
    // reported witness must be checker-verified and minimized.
    const auto s = static_cast<std::size_t>(trial.params.at("structure"));
    check::HwOptions hw;
    hw.threads = 4;
    hw.ops_per_thread = options.quick ? 800 : 2'000;
    hw.bursts = 4;
    hw.seed = trial.seed;
    // The untagged stack needs lin-point brackets to expose ABA; the
    // novalidate skip list trips on call-boundary intervals already.
    hw.stamp = registry[s].name == "skiplist-novalidate"
                   ? check::StampMode::kCallBoundary
                   : check::StampMode::kLinPoint;
    hw.clock = check::ClockMode::kTsc;
    check::HwSession session(registry[s].name, hw);
    const check::HwResult& r = session.run();
    const bool caught =
        r.lin.verdict == check::LinVerdict::kNotLinearizable;
    return {{"caught", caught ? 1.0 : 0.0},
            {"witness_ops", static_cast<double>(r.witness.size())},
            {"minimized", r.witness_minimized ? 1.0 : 0.0}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    const std::vector<std::size_t> threads = thread_counts(options);
    const std::size_t max_threads = threads.back();
    const std::size_t host_cpus = util::available_cpus();

    Table overhead({"structure / clock", "threads", "base ns/op",
                    "instr ns/op", "overhead ns/op"});
    // overhead at the max thread count, per structure per clock
    std::vector<double> ticket_ns(overhead_structures().size(), -1.0);
    std::vector<double> tsc_ns(overhead_structures().size(), -1.0);
    std::size_t lin_cells = 0, lin_pass = 0;
    std::string lin_failures;
    std::size_t mut_cells = 0, mut_caught = 0, mut_minimized = 0;

    for (const TrialResult& r : results) {
      const Metrics& m = r.metrics;
      const double cell = r.trial.params.at("cell");
      if (cell == kCellOverhead) {
        overhead.add_row(
            {r.trial.id, fmt(r.trial.params.at("threads"), 0),
             fmt(m.at("base_ns"), 1), fmt(m.at("instr_ns"), 1),
             fmt(m.at("overhead_ns"), 1)});
        const auto s =
            static_cast<std::size_t>(r.trial.params.at("structure"));
        if (static_cast<std::size_t>(r.trial.params.at("threads")) ==
            max_threads) {
          (r.trial.params.at("clock") == 0.0 ? ticket_ns : tsc_ns)[s] =
              m.at("overhead_ns");
        }
      } else if (cell == kCellLincheck) {
        ++lin_cells;
        if (exp::flag(m.at("linearizable"))) {
          ++lin_pass;
        } else {
          lin_failures += " " + r.trial.id;
        }
      } else {
        ++mut_cells;
        if (exp::flag(m.at("caught"))) ++mut_caught;
        if (exp::flag(m.at("minimized"))) ++mut_minimized;
      }
    }
    overhead.print(os);

    // Per-structure ticket/tsc overhead ratio at the max thread count.
    // Geomean over structures; overheads clamped to 0.5 ns so timer
    // noise around zero cannot blow the ratio up either way.
    double log_ratio_sum = 0.0;
    std::size_t ratio_cells = 0;
    for (std::size_t s = 0; s < overhead_structures().size(); ++s) {
      if (ticket_ns[s] < 0.0 || tsc_ns[s] < 0.0) continue;
      const double ratio =
          std::max(ticket_ns[s], 0.5) / std::max(tsc_ns[s], 0.5);
      os << "overhead ratio (ticket/tsc) at t" << max_threads << " "
         << overhead_structures()[s] << ": " << fmt(ratio, 2) << "\n";
      log_ratio_sum += std::log(ratio);
      ++ratio_cells;
    }
    const double geomean =
        ratio_cells == 0 ? 0.0 : std::exp(log_ratio_sum / ratio_cells);

    if (ratio_cells > 0) {
      os << "host cpus: " << host_cpus << "; geomean ticket/tsc overhead "
         << "ratio at t" << max_threads << ": " << fmt(geomean, 2) << "\n";
    } else {
      os << "host cpus: " << host_cpus << "; partial sweep (--clock): "
         << "overhead ratio not judged\n";
    }
    os
       << "tsc lincheck: " << lin_pass << "/" << lin_cells
       << " stock structure x reclaim cells LINEARIZABLE"
       << (lin_failures.empty() ? "" : "; FAILED:" + lin_failures) << "\n";
    if (mut_cells > 0) {
      os << "tsc mutants: " << mut_caught << "/" << mut_cells
         << " caught NOT-LINEARIZABLE, " << mut_minimized << "/" << mut_cells
         << " witnesses minimized\n";
    } else {
      os << "tsc mutants: not compiled in (build with -DPWF_HW_MUTANTS=ON; "
            "the hw-mutant CI job covers this gate)\n";
    }

    // The contention gate scales with how much contention the host can
    // actually generate: with >= 4 CPUs the ticket line bounces between
    // cores and tsc must win >= 4x at the max thread count; with 2-3
    // CPUs the bounce is partial, so a clear >= 1.5x win suffices. A
    // serial host has no cross-core traffic to escape — an L1-hot
    // fetch_add (~9 ns) is cheaper there than an rdtsc (~21 ns) — so
    // the gate becomes a parity band: tsc overhead within 2.5x of
    // ticket (measured geomean ~0.5-0.7 on a 1-vCPU host; see
    // EXPERIMENTS.md).
    bool overhead_gate = true;
    if (ratio_cells > 0) {
      overhead_gate = host_cpus >= 4   ? geomean >= 4.0
                      : host_cpus >= 2 ? geomean >= 1.5
                                       : geomean >= 0.4;
    }
    const bool lincheck_gate = lin_cells > 0 && lin_pass == lin_cells;
    const bool mutant_gate =
        mut_cells == 0 || (mut_caught == mut_cells &&
                           mut_minimized == mut_cells);

    Verdict v;
    v.reproduced = overhead_gate && lincheck_gate && mutant_gate;
    v.detail = ratio_cells == 0
                   ? "partial sweep (--clock): overhead ratio not judged; "
                     "tsc verdict cells gated only"
               : host_cpus >= 4
                   ? "tsc stamping >= 4x cheaper than the ticket clock at "
                     "max threads; tsc verdicts match the golden clock"
               : host_cpus >= 2
                   ? "2-3 cpus: tsc stamping clearly beat the "
                     "partially-bouncing ticket clock; tsc verdicts match "
                     "the golden clock"
                   : "serial host (1 cpu): tsc held parity with the "
                     "uncontended ticket clock; tsc verdicts match the "
                     "golden clock";
    v.summary = {{"host_cpus", static_cast<double>(host_cpus)},
                 {"geomean_ratio", geomean},
                 {"max_threads", static_cast<double>(max_threads)},
                 {"lincheck_pass", static_cast<double>(lin_pass)},
                 {"lincheck_cells", static_cast<double>(lin_cells)},
                 {"mutants_caught", static_cast<double>(mut_caught)},
                 {"mutant_cells", static_cast<double>(mut_cells)}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<CaptureOverhead>());

}  // namespace
