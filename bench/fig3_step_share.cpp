// Figure 3 — "Percentage of steps taken by each process during an
// execution" (paper, Appendix A.1).
//
// Records hardware schedules with the paper's two methods (atomic ticket
// counter; timestamps) and prints the per-thread share of steps. The
// paper's observation: over long executions the scheduler is fair — every
// thread takes about 1/n of the steps. For reference the same statistic is
// printed for a *simulated* uniform stochastic schedule of the same length.
#include <algorithm>
#include <iostream>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "sched/recorder.hpp"
#include "util/table.hpp"

int main() {
  using namespace pwf;
  using namespace pwf::sched;

  bench::print_header(
      "Figure 3: per-thread share of steps over a long execution",
      "Claim: the long-run hardware schedule is fair (share ~= 1/n each).");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads available: " << hw
            << (hw <= 1 ? "  [single core: shares reflect OS time-slicing]"
                        : "")
            << "\n\n";

  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kSteps = 2'000'000;

  // Method 1: atomic fetch-and-increment tickets (the paper's primary).
  // Each repetition must span several OS scheduling quanta, or a
  // single-core host hands all tickets to one thread per quantum.
  ScheduleStats ticket_stats(kThreads);
  for (int rep = 0; rep < 5; ++rep) {
    ticket_stats.add_schedule(record_schedule_tickets(kThreads, 6 * kSteps));
  }

  // Method 2: timestamps (the paper notes this perturbs the schedule).
  ScheduleStats stamp_stats(kThreads);
  stamp_stats.add_schedule(
      record_schedule_timestamps(kThreads, kSteps / kThreads / 10));

  // Reference: the uniform stochastic scheduler in simulation.
  core::Simulation::Options opts;
  opts.num_registers = core::ParallelCode::registers_required();
  opts.seed = 2014;
  bench::print_seed(opts.seed);
  core::Simulation sim(kThreads, core::ParallelCode::factory(2),
                       std::make_unique<core::UniformScheduler>(), opts);
  SimScheduleRecorder recorder(kSteps);
  sim.set_observer(&recorder);
  sim.run(kSteps);
  ScheduleStats sim_stats(kThreads);
  sim_stats.add_schedule(recorder.order());

  Table table({"thread", "tickets share %", "timestamps share %",
               "simulated uniform %", "ideal %"});
  const auto t_shares = ticket_stats.shares();
  const auto s_shares = stamp_stats.shares();
  const auto m_shares = sim_stats.shares();
  for (std::size_t t = 0; t < kThreads; ++t) {
    table.add_row({"p" + std::to_string(t + 1), fmt(100.0 * t_shares[t], 2),
                   fmt(100.0 * s_shares[t], 2), fmt(100.0 * m_shares[t], 2),
                   fmt(100.0 / kThreads, 2)});
  }
  table.print(std::cout);

  std::cout << "max |share - 1/n|: tickets " << fmt(ticket_stats.max_share_deviation(), 4)
            << ", timestamps " << fmt(stamp_stats.max_share_deviation(), 4)
            << ", simulated " << fmt(sim_stats.max_share_deviation(), 4) << '\n';

  // On a multicore box the hardware shares should be within a few percent
  // of uniform; on one core the OS time-slices coarsely, so accept more.
  // The paper used both recording methods; either one witnessing long-run
  // fairness reproduces the figure's claim.
  const double tolerance = hw > 1 ? 0.10 : 0.20;
  const double best_hw_deviation = std::min(
      ticket_stats.max_share_deviation(), stamp_stats.max_share_deviation());
  const bool reproduced = best_hw_deviation < tolerance;
  bench::print_verdict(reproduced,
                       "long-run fairness of the recorded schedule (paper's "
                       "justification for the uniform model)");
  return reproduced ? 0 : 1;
}
