// Figure 3 — "Percentage of steps taken by each process during an
// execution" (paper, Appendix A.1).
//
// Records hardware schedules with the paper's two methods (atomic ticket
// counter; timestamps) and prints the per-thread share of steps. The
// paper's observation: over long executions the scheduler is fair — every
// thread takes about 1/n of the steps. For reference the same statistic is
// printed for a *simulated* uniform stochastic schedule of the same length.
// Hardware trials measure the host, so this experiment is exclusive: its
// trials never share the machine with other work.
#include <algorithm>
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "sched/recorder.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::sched;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kThreads = 4;
constexpr std::uint64_t kSteps = 2'000'000;

Metrics shares_to_metrics(ScheduleStats& stats) {
  Metrics m;
  const auto shares = stats.shares();
  for (std::size_t t = 0; t < kThreads; ++t) {
    m["share_p" + std::to_string(t + 1)] = shares[t];
  }
  m["max_dev"] = stats.max_share_deviation();
  return m;
}

class Fig3StepShare final : public exp::Experiment {
 public:
  std::string name() const override { return "fig3_step_share"; }
  std::string artifact() const override {
    return "Figure 3: per-thread share of steps over a long execution";
  }
  std::string claim() const override {
    return "Claim: the long-run hardware schedule is fair "
           "(share ~= 1/n each).";
  }
  std::uint64_t default_seed() const override { return 2014; }
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid(3);
    grid[0].id = "tickets";
    grid[0].params = {{"method", 0.0}};
    grid[0].seed = base;
    grid[1].id = "timestamps";
    grid[1].params = {{"method", 1.0}};
    grid[1].seed = base + 1;
    grid[2].id = "simulated uniform";
    grid[2].params = {{"method", 2.0}};
    grid[2].seed = base;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const int method = static_cast<int>(trial.params.at("method"));
    ScheduleStats stats(kThreads);
    if (method == 0) {
      // Atomic fetch-and-increment tickets (the paper's primary). Each
      // repetition must span several OS scheduling quanta, or a
      // single-core host hands all tickets to one thread per quantum.
      const int reps = options.quick ? 2 : 5;
      for (int rep = 0; rep < reps; ++rep) {
        stats.add_schedule(record_schedule_tickets(
            kThreads, options.horizon(6 * kSteps, 1'000'000)));
      }
    } else if (method == 1) {
      // Timestamps (the paper notes this perturbs the schedule).
      stats.add_schedule(record_schedule_timestamps(
          kThreads, options.horizon(kSteps / kThreads / 10, 10'000)));
    } else {
      core::Simulation::Options opts;
      opts.num_registers = core::ParallelCode::registers_required();
      opts.seed = trial.seed;
      core::Simulation sim(kThreads, core::ParallelCode::factory(2),
                           std::make_unique<core::UniformScheduler>(), opts);
      const std::uint64_t steps = options.horizon(kSteps, 200'000);
      SimScheduleRecorder recorder(steps);
      sim.set_observer(&recorder);
      sim.run(steps);
      stats.add_schedule(recorder.order());
    }
    return shares_to_metrics(stats);
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    const unsigned hw = std::thread::hardware_concurrency();
    os << "hardware threads available: " << hw
       << (hw <= 1 ? "  [single core: shares reflect OS time-slicing]" : "")
       << "\n\n";

    const Metrics& tickets = results.at(0).metrics;
    const Metrics& stamps = results.at(1).metrics;
    const Metrics& sim = results.at(2).metrics;
    Table table({"thread", "tickets share %", "timestamps share %",
                 "simulated uniform %", "ideal %"});
    for (std::size_t t = 0; t < kThreads; ++t) {
      const std::string key = "share_p" + std::to_string(t + 1);
      table.add_row({"p" + std::to_string(t + 1),
                     fmt(100.0 * tickets.at(key), 2),
                     fmt(100.0 * stamps.at(key), 2),
                     fmt(100.0 * sim.at(key), 2), fmt(100.0 / kThreads, 2)});
    }
    table.print(os);

    os << "max |share - 1/n|: tickets " << fmt(tickets.at("max_dev"), 4)
       << ", timestamps " << fmt(stamps.at("max_dev"), 4) << ", simulated "
       << fmt(sim.at("max_dev"), 4) << '\n';

    // On a multicore box the hardware shares should be within a few percent
    // of uniform; on one core the OS time-slices coarsely, so accept more.
    // The paper used both recording methods; either one witnessing long-run
    // fairness reproduces the figure's claim.
    const double tolerance = hw > 1 ? 0.10 : 0.20;
    const double best_hw_deviation =
        std::min(tickets.at("max_dev"), stamps.at("max_dev"));
    Verdict v;
    v.reproduced = best_hw_deviation < tolerance;
    v.detail =
        "long-run fairness of the recorded schedule (paper's justification "
        "for the uniform model)";
    v.summary = {{"best_hw_deviation", best_hw_deviation},
                 {"sim_deviation", sim.at("max_dev")}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Fig3StepShare>());

}  // namespace
