// Hardware capture-interval slack: call-boundary vs lin-point stamping
// (src/check/hw_capture). The same structures are captured under forced
// scheduler jitter in both stamp modes; the metric is per-operation
// interval slack — foreign tickets strictly inside the interval the
// checker reasons about. Boundary stamps swallow every preemption that
// lands between the stamp and the structure call, so jitter inflates
// their slack; the lin-point bracket hugs the linearizing instruction
// and stays tight. Tight intervals are what make a LINEARIZABLE verdict
// evidence about the structure rather than about capture widening, so
// the median-slack gap is the value of instrumented stamping.
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/hw_capture.hpp"
#include "check/lin_check.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

const std::vector<std::string>& structures() {
  static const std::vector<std::string> kStructures = {
      "treiber-stack", "ms-queue", "cas-counter", "harris-list"};
  return kStructures;
}

constexpr double kModeBoundary = 0.0;
constexpr double kModeLinPoint = 1.0;

class HwSlack final : public exp::Experiment {
 public:
  std::string name() const override { return "hw_slack"; }
  std::string artifact() const override {
    return "hardware capture-interval slack: call-boundary vs lin-point "
           "stamping under forced jitter (src/check/hw_capture)";
  }
  std::string claim() const override {
    return "Claim: lin-point stamping yields strictly lower median "
           "interval slack than call-boundary stamping on at least two "
           "structures, with identical LINEARIZABLE verdicts.";
  }
  std::uint64_t default_seed() const override { return 20140722; }

  // Real-thread captures; keep the trial pool from stealing the core.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t s = 0; s < structures().size(); ++s) {
      for (const double mode : {kModeBoundary, kModeLinPoint}) {
        Trial t;
        t.id = structures()[s] + "/" +
               (mode == kModeLinPoint ? "lin-point" : "call-boundary");
        t.params = {{"structure", static_cast<double>(s)}, {"mode", mode}};
        // One seed per structure, shared by the modes: the workloads are
        // seed-deterministic, so both modes drive the same op mix.
        t.seed = exp::derive_seed(base, s);
        grid.push_back(std::move(t));
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto s = static_cast<std::size_t>(trial.params.at("structure"));
    const bool lin_point = trial.params.at("mode") == kModeLinPoint;

    check::HwOptions hw;
    hw.threads = 4;
    hw.ops_per_thread = options.quick ? 300 : 1'500;
    hw.seed = trial.seed;
    hw.stamp = lin_point ? check::StampMode::kLinPoint
                         : check::StampMode::kCallBoundary;
    // Yield around every op's boundary stamps: on a single-core host this
    // is what makes the comparison visible — without forced preemption
    // nearly every interval is tight in both modes.
    hw.jitter_period = 1;

    check::HwSession session(structures()[s], hw);
    const check::HwResult& r = session.run();
    return {{"operations", static_cast<double>(r.total_ops)},
            {"linearizable",
             r.lin.verdict == check::LinVerdict::kLinearizable ? 1.0 : 0.0},
            {"median_slack", r.median_slack},
            {"mean_slack", r.mean_slack},
            {"max_slack", static_cast<double>(r.max_slack)},
            {"boundary_median_slack", r.boundary_median_slack},
            {"stamped", static_cast<double>(r.stamped_ops)},
            {"capture_ms", r.capture_ms},
            {"check_ms", r.check_ms}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    (void)options;
    Table table({"structure / mode", "ops", "verdict", "median", "mean",
                 "max", "capture ms", "check ms"});
    std::vector<double> boundary_median(structures().size(), -1.0);
    std::vector<double> lin_median(structures().size(), -1.0);
    bool all_linearizable = true;

    for (const TrialResult& r : results) {
      const Metrics& m = r.metrics;
      const bool lin = exp::flag(m.at("linearizable"));
      all_linearizable = all_linearizable && lin;
      table.add_row({r.trial.id, fmt(m.at("operations"), 0),
                     lin ? "LINEARIZABLE" : "NOT-LINEARIZABLE",
                     fmt(m.at("median_slack"), 1), fmt(m.at("mean_slack"), 2),
                     fmt(m.at("max_slack"), 0), fmt(m.at("capture_ms"), 1),
                     fmt(m.at("check_ms"), 1)});
      const auto s = static_cast<std::size_t>(r.trial.params.at("structure"));
      if (r.trial.params.at("mode") == kModeLinPoint) {
        lin_median[s] = m.at("median_slack");
      } else {
        boundary_median[s] = m.at("median_slack");
      }
    }
    table.print(os);

    std::size_t tighter = 0;
    for (std::size_t s = 0; s < structures().size(); ++s) {
      if (lin_median[s] >= 0.0 && boundary_median[s] >= 0.0 &&
          lin_median[s] < boundary_median[s]) {
        ++tighter;
      }
    }
    os << "structures with strictly tighter lin-point median: " << tighter
       << "/" << structures().size() << "\n";

    Verdict v;
    v.reproduced = all_linearizable && tighter >= 2;
    v.detail =
        "lin-point brackets cut median interval slack below the "
        "call-boundary capture on >= 2 structures, verdicts unchanged";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<HwSlack>());

}  // namespace
