// Theorem 3 — "Min to Max Progress": under any stochastic scheduler with
// threshold theta > 0, a boundedly lock-free algorithm is wait-free with
// probability 1, with expected per-operation bound at most (1/theta)^T.
//
// Experiment: scan-validate (bounded minimal progress, solo bound T = 2)
// driven by an adversary that always schedules the highest-id process,
// wrapped in a theta-mixture for several theta values. For each theta we
// report the worst per-process observed latency and completion counts.
// With theta = 0 (the pure adversary) every process but one starves.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Row {
  double theta;
  bool all_completed;
  std::uint64_t min_completions;
  double worst_individual_latency;
};

Row run_with_theta(double theta, std::size_t n, std::uint64_t steps,
                   std::uint64_t seed) {
  auto adversary = std::make_unique<AdversarialScheduler>(
      [](std::uint64_t, std::span<const std::size_t> active) {
        return active.back();
      });
  std::unique_ptr<Scheduler> sched;
  if (theta > 0.0) {
    sched = std::make_unique<ThetaMixScheduler>(theta, std::move(adversary));
  } else {
    sched = std::move(adversary);
  }
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = seed;
  Simulation sim(n, scan_validate_factory(), std::move(sched), opts);
  ProgressTracker tracker(n);
  sim.set_observer(&tracker);
  sim.run(steps);

  Row row{theta, tracker.every_process_completed(), ~0ULL, 0.0};
  for (std::size_t p = 0; p < n; ++p) {
    row.min_completions = std::min(row.min_completions, tracker.completions(p));
    if (sim.report().completions_per_process[p] > 0) {
      row.worst_individual_latency = std::max(
          row.worst_individual_latency, sim.report().individual_latency(p));
    }
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Theorem 3: bounded minimal progress + stochastic scheduler "
      "=> maximal progress",
      "Claim: any theta > 0 rescues every process from an adversary; the "
      "expected bound scales like (1/theta)^T (T = 2 for scan-validate).");
  constexpr std::size_t kN = 4;
  constexpr std::uint64_t kSteps = 3'000'000;
  bench::print_seed(1234);

  Table table({"theta", "(1/theta)^T", "all completed?", "min completions",
               "worst W_i observed"});
  bool theorem_holds = true;
  for (double theta : {0.20, 0.10, 0.05, 0.02, 0.01}) {
    const Row row = run_with_theta(theta, kN, kSteps, 1234);
    table.add_row({fmt(theta, 3),
                   fmt(theory::theorem3_expected_bound(theta, 2), 1),
                   row.all_completed ? "yes" : "NO", fmt(row.min_completions),
                   fmt(row.worst_individual_latency, 1)});
    theorem_holds = theorem_holds && row.all_completed;
  }
  const Row pure = run_with_theta(0.0, kN, kSteps, 1234);
  table.add_row({"0 (adversary)", "unbounded",
                 pure.all_completed ? "yes" : "NO", fmt(pure.min_completions),
                 pure.min_completions ? fmt(pure.worst_individual_latency, 1)
                                      : "infinite (starved)"});
  table.print(std::cout);

  const bool contrast = !pure.all_completed;
  bench::print_verdict(theorem_holds && contrast,
                       "every theta > 0 yields maximal progress; theta = 0 "
                       "starves all but the adversary's favourite");
  return (theorem_holds && contrast) ? 0 : 1;
}
