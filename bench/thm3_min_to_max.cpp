// Theorem 3 — "Min to Max Progress": under any stochastic scheduler with
// threshold theta > 0, a boundedly lock-free algorithm is wait-free with
// probability 1, with expected per-operation bound at most (1/theta)^T.
//
// Experiment: scan-validate (bounded minimal progress, solo bound T = 2)
// driven by an adversary that always schedules the highest-id process,
// wrapped in a theta-mixture for several theta values. For each theta we
// report the worst per-process observed latency and completion counts.
// With theta = 0 (the pure adversary) every process but one starves.
#include <algorithm>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kN = 4;

class Thm3MinToMax final : public exp::Experiment {
 public:
  std::string name() const override { return "thm3_min_to_max"; }
  std::string artifact() const override {
    return "Theorem 3: bounded minimal progress + stochastic scheduler "
           "=> maximal progress";
  }
  std::string claim() const override {
    return "Claim: any theta > 0 rescues every process from an adversary; "
           "the expected bound scales like (1/theta)^T (T = 2 for "
           "scan-validate).";
  }
  std::uint64_t default_seed() const override { return 1234; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<double> thetas = options.quick
                                           ? std::vector<double>{0.20, 0.05,
                                                                 0.01}
                                           : std::vector<double>{0.20, 0.10,
                                                                 0.05, 0.02,
                                                                 0.01};
    std::vector<Trial> grid;
    for (double theta : thetas) {
      Trial t;
      t.id = "theta=" + fmt(theta, 3);
      t.params = {{"theta", theta}};
      t.seed = base;
      grid.push_back(std::move(t));
    }
    Trial pure;
    pure.id = "theta=0 (adversary)";
    pure.params = {{"theta", 0.0}};
    pure.seed = base;
    grid.push_back(std::move(pure));
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const double theta = trial.params.at("theta");
    auto adversary = std::make_unique<AdversarialScheduler>(
        [](std::uint64_t, std::span<const std::size_t> active) {
          return active.back();
        });
    std::unique_ptr<Scheduler> sched;
    if (theta > 0.0) {
      sched = std::make_unique<ThetaMixScheduler>(theta, std::move(adversary));
    } else {
      sched = std::move(adversary);
    }
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
    opts.seed = trial.seed;
    Simulation sim(kN, scan_validate_factory(), std::move(sched), opts);
    ProgressTracker tracker(kN);
    sim.set_observer(&tracker);
    sim.run(options.horizon(3'000'000, 400'000));

    std::uint64_t min_completions = ~0ULL;
    double worst_wi = 0.0;
    for (std::size_t p = 0; p < kN; ++p) {
      min_completions = std::min(min_completions, tracker.completions(p));
      if (sim.report().completions_per_process[p] > 0) {
        worst_wi = std::max(worst_wi, sim.report().individual_latency(p));
      }
    }
    return {{"all_completed", tracker.every_process_completed() ? 1.0 : 0.0},
            {"min_completions", static_cast<double>(min_completions)},
            {"worst_wi", worst_wi}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    Table table({"theta", "(1/theta)^T", "all completed?", "min completions",
                 "worst W_i observed"});
    bool theorem_holds = true;
    bool contrast = false;
    for (const TrialResult& r : results) {
      const double theta = r.trial.params.at("theta");
      const Metrics& m = r.metrics;
      const bool all = exp::flag(m.at("all_completed"));
      if (theta > 0.0) {
        table.add_row({fmt(theta, 3),
                       fmt(theory::theorem3_expected_bound(theta, 2), 1),
                       all ? "yes" : "NO", fmt(m.at("min_completions"), 0),
                       fmt(m.at("worst_wi"), 1)});
        theorem_holds = theorem_holds && all;
      } else {
        table.add_row({"0 (adversary)", "unbounded", all ? "yes" : "NO",
                       fmt(m.at("min_completions"), 0),
                       m.at("min_completions") > 0.5
                           ? fmt(m.at("worst_wi"), 1)
                           : "infinite (starved)"});
        contrast = !all;
      }
    }
    table.print(os);

    Verdict v;
    v.reproduced = theorem_holds && contrast;
    v.detail =
        "every theta > 0 yields maximal progress; theta = 0 starves all "
        "but the adversary's favourite";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Thm3MinToMax>());

}  // namespace
