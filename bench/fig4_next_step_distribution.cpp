// Figure 4 — "Percentage of steps taken by processes, starting from a step
// by p1" (paper, Appendix A.1).
//
// From recorded schedules, estimates P[next step by p_j | current step by
// p_1]. The paper's observation: locally, every process is roughly equally
// likely to be scheduled next — the motivation for the uniform stochastic
// scheduler. On a single-core host the hardware rows are dominated by the
// OS quantum (long self-runs), which the paper's caveat anticipates: the
// claim is about long-run behaviour, which Figure 3 covers; this figure is
// reproduced exactly under the simulated scheduler.
#include <iostream>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "sched/recorder.hpp"
#include "util/table.hpp"

int main() {
  using namespace pwf;
  using namespace pwf::sched;

  bench::print_header(
      "Figure 4: P[next step by p_j | step by p_i]",
      "Claim: conditioned on any process stepping, the next step is "
      "approximately uniform across processes.");
  const unsigned hw = std::thread::hardware_concurrency();
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kSteps = 2'000'000;

  ScheduleStats hw_stats(kThreads);
  for (int rep = 0; rep < 10; ++rep) {
    hw_stats.add_schedule(record_schedule_tickets(kThreads, kSteps / 10));
  }

  core::Simulation::Options opts;
  opts.num_registers = core::ParallelCode::registers_required();
  opts.seed = 2014;
  bench::print_seed(opts.seed);
  core::Simulation sim(kThreads, core::ParallelCode::factory(2),
                       std::make_unique<core::UniformScheduler>(), opts);
  SimScheduleRecorder recorder(kSteps);
  sim.set_observer(&recorder);
  sim.run(kSteps);
  ScheduleStats sim_stats(kThreads);
  sim_stats.add_schedule(recorder.order());

  auto print_matrix = [&](const std::string& title, ScheduleStats& stats) {
    std::cout << "\n" << title << ":\n";
    std::vector<std::string> header{"given step by"};
    for (std::size_t u = 0; u < kThreads; ++u) {
      header.push_back("next p" + std::to_string(u + 1) + " %");
    }
    Table table(header);
    for (std::size_t t = 0; t < kThreads; ++t) {
      std::vector<std::string> row{"p" + std::to_string(t + 1)};
      for (double p : stats.next_distribution(t)) {
        row.push_back(fmt(100.0 * p, 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "max |P[u|t] - 1/n| = "
              << fmt(stats.max_conditional_deviation(), 4) << '\n';
  };

  print_matrix("hardware (ticket method)", hw_stats);
  print_matrix("simulated uniform scheduler", sim_stats);

  const bool sim_ok = sim_stats.max_conditional_deviation() < 0.02;
  const bool hw_ok = hw > 1 ? hw_stats.max_conditional_deviation() < 0.25
                            : true;  // single core: quantum dominates
  bench::print_verdict(
      sim_ok && hw_ok,
      "local near-uniformity of the schedule (exact in the model; "
      "approximate on hardware, per the paper's own caveat)");
  return (sim_ok && hw_ok) ? 0 : 1;
}
