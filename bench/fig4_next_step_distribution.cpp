// Figure 4 — "Percentage of steps taken by processes, starting from a step
// by p1" (paper, Appendix A.1).
//
// From recorded schedules, estimates P[next step by p_j | current step by
// p_1]. The paper's observation: locally, every process is roughly equally
// likely to be scheduled next — the motivation for the uniform stochastic
// scheduler. On a single-core host the hardware rows are dominated by the
// OS quantum (long self-runs), which the paper's caveat anticipates: the
// claim is about long-run behaviour, which Figure 3 covers; this figure is
// reproduced exactly under the simulated scheduler.
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "sched/recorder.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::sched;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kThreads = 4;
constexpr std::uint64_t kSteps = 2'000'000;

Metrics matrix_to_metrics(ScheduleStats& stats) {
  Metrics m;
  for (std::size_t t = 0; t < kThreads; ++t) {
    const auto dist = stats.next_distribution(t);
    for (std::size_t u = 0; u < kThreads; ++u) {
      m["next_p" + std::to_string(t + 1) + "_p" + std::to_string(u + 1)] =
          dist[u];
    }
  }
  m["max_dev"] = stats.max_conditional_deviation();
  return m;
}

class Fig4NextStepDistribution final : public exp::Experiment {
 public:
  std::string name() const override { return "fig4_next_step_distribution"; }
  std::string artifact() const override {
    return "Figure 4: P[next step by p_j | step by p_i]";
  }
  std::string claim() const override {
    return "Claim: conditioned on any process stepping, the next step is "
           "approximately uniform across processes.";
  }
  std::uint64_t default_seed() const override { return 2014; }
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid(2);
    grid[0].id = "hardware (ticket method)";
    grid[0].params = {{"hardware", 1.0}};
    grid[0].seed = base;
    grid[1].id = "simulated uniform scheduler";
    grid[1].params = {{"hardware", 0.0}};
    grid[1].seed = base;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    ScheduleStats stats(kThreads);
    if (trial.params.at("hardware") > 0.5) {
      const int reps = options.quick ? 3 : 10;
      for (int rep = 0; rep < reps; ++rep) {
        stats.add_schedule(record_schedule_tickets(
            kThreads, options.horizon(kSteps / 10, 50'000)));
      }
    } else {
      core::Simulation::Options opts;
      opts.num_registers = core::ParallelCode::registers_required();
      opts.seed = trial.seed;
      core::Simulation sim(kThreads, core::ParallelCode::factory(2),
                           std::make_unique<core::UniformScheduler>(), opts);
      const std::uint64_t steps = options.horizon(kSteps, 200'000);
      SimScheduleRecorder recorder(steps);
      sim.set_observer(&recorder);
      sim.run(steps);
      stats.add_schedule(recorder.order());
    }
    return matrix_to_metrics(stats);
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    const unsigned hw = std::thread::hardware_concurrency();
    for (const TrialResult& r : results) {
      os << "\n" << r.trial.id << ":\n";
      std::vector<std::string> header{"given step by"};
      for (std::size_t u = 0; u < kThreads; ++u) {
        header.push_back("next p" + std::to_string(u + 1) + " %");
      }
      Table table(header);
      for (std::size_t t = 0; t < kThreads; ++t) {
        std::vector<std::string> row{"p" + std::to_string(t + 1)};
        for (std::size_t u = 0; u < kThreads; ++u) {
          row.push_back(
              fmt(100.0 * r.metrics.at("next_p" + std::to_string(t + 1) +
                                       "_p" + std::to_string(u + 1)),
                  2));
        }
        table.add_row(std::move(row));
      }
      table.print(os);
      os << "max |P[u|t] - 1/n| = " << fmt(r.metrics.at("max_dev"), 4)
         << '\n';
    }

    const double hw_dev = results.at(0).metrics.at("max_dev");
    const double sim_dev = results.at(1).metrics.at("max_dev");
    const bool sim_ok = sim_dev < 0.02;
    const bool hw_ok = hw > 1 ? hw_dev < 0.25
                              : true;  // single core: quantum dominates
    Verdict v;
    v.reproduced = sim_ok && hw_ok;
    v.detail =
        "local near-uniformity of the schedule (exact in the model; "
        "approximate on hardware, per the paper's own caveat)";
    v.summary = {{"hw_deviation", hw_dev}, {"sim_deviation", sim_dev}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Fig4NextStepDistribution>());

}  // namespace
