// Robustness of the paper's predictions to the scheduler's shape — the
// Section 8 question ("non-uniform stochastic schedulers") made into an
// experiment. Theorems 3-5 only need a threshold theta > 0, not
// uniformity: scan-validate is run under every stochastic scheduler in
// the repo (uniform, sticky/bursty, Zipf-weighted, lottery, and a
// theta-mixture wrapping a starvation adversary) and must deliver
// maximal progress and a finite latency under each.
//
// A final trial drives the sticky scheduler across a crash plan: after a
// crash the scheduler must fall back cleanly (Scheduler::on_crash) and the
// survivors must keep completing — the regression scenario for the stale
// sticky-favourite bug.
#include <algorithm>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/progress.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kN = 8;

enum class Kind {
  kUniform,
  kSticky,
  kZipf,
  kLottery,
  kThetaMix,
  kStickyCrash
};

struct Variant {
  Kind kind;
  const char* label;
};

const std::vector<Variant> kVariants{
    {Kind::kUniform, "uniform"},
    {Kind::kSticky, "sticky rho=0.75"},
    {Kind::kZipf, "zipf exponent=1"},
    {Kind::kLottery, "lottery 1..n tickets"},
    {Kind::kThetaMix, "theta-mix 0.05 over adversary"},
    {Kind::kStickyCrash, "sticky rho=0.9 + crash plan"},
};

std::unique_ptr<Scheduler> make_sched(Kind kind) {
  switch (kind) {
    case Kind::kUniform:
      return std::make_unique<UniformScheduler>();
    case Kind::kSticky:
      return std::make_unique<StickyScheduler>(0.75);
    case Kind::kZipf:
      return std::make_unique<WeightedScheduler>(make_zipf_scheduler(kN, 1.0));
    case Kind::kLottery: {
      std::vector<unsigned> tickets(kN);
      for (std::size_t p = 0; p < kN; ++p) {
        tickets[p] = static_cast<unsigned>(p + 1);
      }
      return std::make_unique<WeightedScheduler>(
          make_lottery_scheduler(std::move(tickets)));
    }
    case Kind::kThetaMix:
      return std::make_unique<ThetaMixScheduler>(
          0.05, std::make_unique<AdversarialScheduler>(
                    [](std::uint64_t, std::span<const std::size_t> active) {
                      return active.back();
                    }));
    case Kind::kStickyCrash:
      return std::make_unique<StickyScheduler>(0.9);
  }
  return nullptr;
}

class SchedRobustness final : public exp::Experiment {
 public:
  std::string name() const override { return "sched_robustness"; }
  std::string artifact() const override {
    return "Section 8 / Theorem 3's hypothesis: predictions survive "
           "non-uniform stochastic schedulers";
  }
  std::string claim() const override {
    return "Claim: any scheduler with threshold theta > 0 yields maximal "
           "progress for scan-validate, bursty or skewed or adversarially "
           "mixed alike, including across crashes.";
  }
  std::uint64_t default_seed() const override { return 4242; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (std::size_t v = 0; v < kVariants.size(); ++v) {
      Trial t;
      t.id = kVariants[v].label;
      t.params = {{"variant", static_cast<double>(v)}};
      t.seed = exp::derive_seed(base, v);
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const Variant& variant =
        kVariants.at(static_cast<std::size_t>(trial.params.at("variant")));
    const std::uint64_t steps = options.horizon(2'000'000, 300'000);
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
    opts.seed = trial.seed;
    Simulation sim(kN, scan_validate_factory(), make_sched(variant.kind),
                   opts);
    std::size_t survivors = kN;
    if (variant.kind == Kind::kStickyCrash) {
      // Crash half the processes, spread over the run, highest ids first —
      // each crash is likely to hit the current sticky favourite.
      for (std::size_t c = 0; c < kN / 2; ++c) {
        sim.schedule_crash(steps / 8 * (c + 1), kN - 1 - c);
      }
      survivors = kN - kN / 2;
    }
    ProgressTracker tracker(kN);
    sim.set_observer(&tracker);
    sim.run(steps);

    bool everyone = true;
    std::uint64_t min_completions = ~0ULL;
    for (std::size_t p = 0; p < survivors; ++p) {
      if (tracker.completions(p) == 0) everyone = false;
      min_completions = std::min(min_completions, tracker.completions(p));
    }
    return {{"w", sim.report().system_latency()},
            {"everyone", everyone ? 1.0 : 0.0},
            {"min_completions", static_cast<double>(min_completions)},
            {"theta_n", sim.scheduler().theta(survivors)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    os << "scan-validate, n = " << kN << "\n\n";
    Table table({"scheduler", "theta(n)", "system W",
                 "min completions (survivors)", "everyone completes?"});
    bool reproduced = true;
    for (const TrialResult& r : results) {
      const Metrics& m = r.metrics;
      table.add_row({r.trial.id, fmt(m.at("theta_n"), 4), fmt(m.at("w"), 2),
                     fmt(m.at("min_completions"), 0),
                     exp::flag(m.at("everyone")) ? "yes" : "NO"});
      reproduced = reproduced && exp::flag(m.at("everyone")) &&
                   m.at("min_completions") > 0.5 && m.at("theta_n") > 0.0;
    }
    table.print(os);

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "every stochastic scheduler (theta > 0) delivers maximal progress, "
        "including the bursty sticky scheduler across a crash plan";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<SchedRobustness>());

}  // namespace
