// Section 2.2 as one experiment: the full progress-property ladder —
// blocking deadlock-free (spinlock), obstruction-free (claim pair),
// lock-free (scan-validate), wait-free (helped universal) — run under the
// schedules that separate them:
//   * uniform stochastic (what real systems look like long-run),
//   * a lock-step/crafted schedule (livelocks the OF rung),
//   * a starving adversary (starves the lock-free rung),
//   * a crash of the most inconvenient process (halts the blocking rung).
// The punchline is the paper's: under the stochastic scheduler EVERY rung
// is practically wait-free, and the guarantees only separate on schedules
// real systems do not produce.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/helping.hpp"
#include "core/progress.hpp"
#include "core/progress_zoo.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

constexpr std::size_t kN = 4;
constexpr std::uint64_t kSteps = 1'500'000;

enum class Sched { kUniform, kLockStep, kStarver, kUniformWithCrash };

std::unique_ptr<Scheduler> make_sched(Sched which) {
  switch (which) {
    case Sched::kUniform:
    case Sched::kUniformWithCrash:
      return std::make_unique<UniformScheduler>();
    case Sched::kLockStep:
      return std::make_unique<RoundRobinScheduler>();
    case Sched::kStarver:
      return std::make_unique<AdversarialScheduler>(
          [](std::uint64_t tau, std::span<const std::size_t> active) {
            if (active.size() > 1 && tau % 500 == 0) {
              return active[(tau / 500) % (active.size() - 1)];
            }
            return active.back();
          });
  }
  return nullptr;
}

struct Cell {
  std::uint64_t completions = 0;
  bool everyone = false;
};

Cell summarize(Simulation& sim, const ProgressTracker& tracker,
               std::size_t crashed) {
  Cell cell;
  cell.completions = sim.report().completions;
  cell.everyone = true;
  for (std::size_t p = 0; p < kN; ++p) {
    if (p == crashed) continue;
    if (tracker.completions(p) == 0) cell.everyone = false;
  }
  return cell;
}

Cell run(const StepMachineFactory& factory, std::size_t regs, Sched which,
         std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = regs;
  opts.seed = seed;
  Simulation sim(kN, factory, make_sched(which), opts);
  std::size_t crashed = kN;  // none
  if (which == Sched::kUniformWithCrash) {
    sim.schedule_crash(1'000, 0);  // crash an arbitrary process early
    crashed = 0;
  }
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  sim.run(kSteps);
  return summarize(sim, tracker, crashed);
}

// The crash column for the *blocking* algorithm must kill the process at
// its most inconvenient moment — while it holds the lock — which requires
// inspecting the machines.
Cell run_spinlock_holder_crash(std::uint64_t seed) {
  std::vector<const SpinlockCounter*> machines;
  Simulation::Options opts;
  opts.num_registers = SpinlockCounter::registers_required();
  opts.seed = seed;
  auto factory = [&machines](std::size_t pid, std::size_t /*n*/) {
    auto m = std::make_unique<SpinlockCounter>(pid);
    machines.push_back(m.get());
    return m;
  };
  Simulation sim(kN, factory, std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  std::size_t holder = kN;
  while (holder == kN) {
    sim.run(1);
    for (std::size_t p = 0; p < kN; ++p) {
      if (machines[p]->holds_lock()) holder = p;
    }
  }
  sim.schedule_crash(sim.now(), holder);
  sim.run(kSteps);
  return summarize(sim, tracker, holder);
}

std::string describe(const Cell& cell) {
  if (cell.completions == 0) return "HALTED (0 ops)";
  if (!cell.everyone) {
    return "starvation (" + fmt(cell.completions) + " ops)";
  }
  return "all progress (" + fmt(cell.completions) + " ops)";
}

}  // namespace

int main() {
  bench::print_header(
      "Section 2.2: the progress hierarchy under separating schedules",
      "Blocking < obstruction-free < lock-free < wait-free — and the "
      "uniform stochastic scheduler erases the differences in practice.");
  bench::print_seed(77);
  std::cout << "n = " << kN << ", horizon = " << kSteps
            << " steps; crash column kills one process at step 1000\n\n";

  struct Row {
    std::string name;
    StepMachineFactory factory;
    std::size_t regs;
  };
  const std::vector<Row> rows = {
      {"blocking spinlock (deadlock-free)", SpinlockCounter::factory(),
       SpinlockCounter::registers_required()},
      {"obstruction-free claim pair", ObstructionPair::factory(),
       ObstructionPair::registers_required()},
      {"lock-free scan-validate", scan_validate_factory(),
       ScuAlgorithm::registers_required(kN, 1)},
      {"wait-free helped universal", HelpedUniversal::factory(400'000),
       HelpedUniversal::registers_required(kN, 400'000)},
  };

  Table table({"algorithm", "uniform stochastic", "lock-step",
               "starving adversary", "uniform + crash"});
  std::vector<std::vector<Cell>> cells;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    std::vector<Cell> line;
    line.push_back(run(row.factory, row.regs, Sched::kUniform, 77));
    line.push_back(run(row.factory, row.regs, Sched::kLockStep, 77));
    line.push_back(run(row.factory, row.regs, Sched::kStarver, 77));
    // For the blocking row, the crash must hit the lock holder.
    line.push_back(r == 0 ? run_spinlock_holder_crash(77)
                          : run(row.factory, row.regs,
                                Sched::kUniformWithCrash, 77));
    table.add_row({row.name, describe(line[0]), describe(line[1]),
                   describe(line[2]), describe(line[3])});
    cells.push_back(std::move(line));
  }
  table.print(std::cout);

  // The separations the theory predicts.
  const bool uniform_all_good =
      cells[0][0].everyone && cells[1][0].everyone && cells[2][0].everyone &&
      cells[3][0].everyone;
  const bool of_livelocks_lockstep =
      cells[1][1].completions < cells[2][1].completions / 100;
  const bool lf_survives_lockstep = cells[2][1].completions > 10'000;
  const bool lf_starved = !cells[2][2].everyone;
  const bool wf_survives_starver = cells[3][2].everyone;
  const bool blocking_halts_on_crash = cells[0][3].completions <
                                       cells[2][3].completions / 100;
  const bool nonblocking_survive_crash =
      cells[1][3].everyone && cells[2][3].everyone && cells[3][3].everyone;

  std::cout << "\nseparations observed:\n"
            << "  OF livelocks under lock-step, LF does not:        "
            << (of_livelocks_lockstep && lf_survives_lockstep ? "yes" : "NO")
            << "\n  LF starves under the adversary, WF does not:      "
            << (lf_starved && wf_survives_starver ? "yes" : "NO")
            << "\n  blocking halts after a crash, non-blocking don't: "
            << (blocking_halts_on_crash && nonblocking_survive_crash ? "yes"
                                                                     : "NO")
            << "\n  uniform stochastic: every rung fully progresses:  "
            << (uniform_all_good ? "yes" : "NO") << "\n";

  const bool reproduced = uniform_all_good && of_livelocks_lockstep &&
                          lf_survives_lockstep && lf_starved &&
                          wf_survives_starver && blocking_halts_on_crash &&
                          nonblocking_survive_crash;
  bench::print_verdict(reproduced,
                       "the hierarchy separates exactly on the pathological "
                       "schedules and collapses to 'practically wait-free' "
                       "under the stochastic one — the paper's thesis, "
                       "extended across all of Section 2.2");
  return reproduced ? 0 : 1;
}
