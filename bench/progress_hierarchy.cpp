// Section 2.2 as one experiment: the full progress-property ladder —
// blocking deadlock-free (spinlock), obstruction-free (claim pair),
// lock-free (scan-validate), wait-free (helped universal) — run under the
// schedules that separate them:
//   * uniform stochastic (what real systems look like long-run),
//   * a lock-step/crafted schedule (livelocks the OF rung),
//   * a starving adversary (starves the lock-free rung),
//   * a crash of the most inconvenient process (halts the blocking rung).
// The punchline is the paper's: under the stochastic scheduler EVERY rung
// is practically wait-free, and the guarantees only separate on schedules
// real systems do not produce.
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "core/algorithms.hpp"
#include "core/helping.hpp"
#include "core/progress.hpp"
#include "core/progress_zoo.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kN = 4;

enum class Alg { kSpinlock, kObstruction, kLockFree, kWaitFree };
enum class Sched { kUniform, kLockStep, kStarver, kUniformWithCrash };

const char* alg_name(Alg a) {
  switch (a) {
    case Alg::kSpinlock: return "blocking spinlock (deadlock-free)";
    case Alg::kObstruction: return "obstruction-free claim pair";
    case Alg::kLockFree: return "lock-free scan-validate";
    case Alg::kWaitFree: return "wait-free helped universal";
  }
  return "?";
}

const char* sched_name(Sched s) {
  switch (s) {
    case Sched::kUniform: return "uniform stochastic";
    case Sched::kLockStep: return "lock-step";
    case Sched::kStarver: return "starving adversary";
    case Sched::kUniformWithCrash: return "uniform + crash";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_sched(Sched which) {
  switch (which) {
    case Sched::kUniform:
    case Sched::kUniformWithCrash:
      return std::make_unique<UniformScheduler>();
    case Sched::kLockStep:
      return std::make_unique<RoundRobinScheduler>();
    case Sched::kStarver:
      return std::make_unique<AdversarialScheduler>(
          [](std::uint64_t tau, std::span<const std::size_t> active) {
            if (active.size() > 1 && tau % 500 == 0) {
              return active[(tau / 500) % (active.size() - 1)];
            }
            return active.back();
          });
  }
  return nullptr;
}

Metrics summarize(Simulation& sim, const ProgressTracker& tracker,
                  std::size_t crashed) {
  bool everyone = true;
  for (std::size_t p = 0; p < kN; ++p) {
    if (p == crashed) continue;
    if (tracker.completions(p) == 0) everyone = false;
  }
  return {{"completions", static_cast<double>(sim.report().completions)},
          {"everyone", everyone ? 1.0 : 0.0}};
}

// The crash cell for the *blocking* algorithm must kill the process at
// its most inconvenient moment — while it holds the lock — which requires
// inspecting the machines.
Metrics run_spinlock_holder_crash(std::uint64_t seed, std::uint64_t steps) {
  std::vector<const SpinlockCounter*> machines;
  Simulation::Options opts;
  opts.num_registers = SpinlockCounter::registers_required();
  opts.seed = seed;
  auto factory = [&machines](std::size_t pid, std::size_t /*n*/) {
    auto m = std::make_unique<SpinlockCounter>(pid);
    machines.push_back(m.get());
    return m;
  };
  Simulation sim(kN, factory, std::make_unique<UniformScheduler>(), opts);
  ProgressTracker tracker(kN);
  sim.set_observer(&tracker);
  std::size_t holder = kN;
  while (holder == kN) {
    sim.run(1);
    for (std::size_t p = 0; p < kN; ++p) {
      if (machines[p]->holds_lock()) holder = p;
    }
  }
  sim.schedule_crash(sim.now(), holder);
  sim.run(steps);
  return summarize(sim, tracker, holder);
}

class ProgressHierarchy final : public exp::Experiment {
 public:
  std::string name() const override { return "progress_hierarchy"; }
  std::string artifact() const override {
    return "Section 2.2: the progress hierarchy under separating schedules";
  }
  std::string claim() const override {
    return "Blocking < obstruction-free < lock-free < wait-free — and the "
           "uniform stochastic scheduler erases the differences in "
           "practice.";
  }
  std::uint64_t default_seed() const override { return 77; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (int a = 0; a < 4; ++a) {
      for (int s = 0; s < 4; ++s) {
        Trial t;
        t.id = std::string(alg_name(static_cast<Alg>(a))) + " / " +
               sched_name(static_cast<Sched>(s));
        t.params = {{"alg", static_cast<double>(a)},
                    {"sched", static_cast<double>(s)}};
        t.seed = base;
        grid.push_back(std::move(t));
      }
    }
    (void)options;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto alg = static_cast<Alg>(
        static_cast<int>(trial.params.at("alg")));
    const auto sched = static_cast<Sched>(
        static_cast<int>(trial.params.at("sched")));
    const std::uint64_t steps = options.horizon(1'500'000, 300'000);

    if (alg == Alg::kSpinlock && sched == Sched::kUniformWithCrash) {
      return run_spinlock_holder_crash(trial.seed, steps);
    }

    StepMachineFactory factory;
    std::size_t regs = 0;
    switch (alg) {
      case Alg::kSpinlock:
        factory = SpinlockCounter::factory();
        regs = SpinlockCounter::registers_required();
        break;
      case Alg::kObstruction:
        factory = ObstructionPair::factory();
        regs = ObstructionPair::registers_required();
        break;
      case Alg::kLockFree:
        factory = scan_validate_factory();
        regs = ScuAlgorithm::registers_required(kN, 1);
        break;
      case Alg::kWaitFree:
        factory = HelpedUniversal::factory(400'000);
        regs = HelpedUniversal::registers_required(kN, 400'000);
        break;
    }
    Simulation::Options opts;
    opts.num_registers = regs;
    opts.seed = trial.seed;
    Simulation sim(kN, factory, make_sched(sched), opts);
    std::size_t crashed = kN;  // none
    if (sched == Sched::kUniformWithCrash) {
      sim.schedule_crash(1'000, 0);  // crash an arbitrary process early
      crashed = 0;
    }
    ProgressTracker tracker(kN);
    sim.set_observer(&tracker);
    sim.run(steps);
    return summarize(sim, tracker, crashed);
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    os << "n = " << kN << ", horizon = "
       << options.horizon(1'500'000, 300'000)
       << " steps; crash column kills one process at step 1000\n\n";

    auto cell = [&](Alg a, Sched s) -> const Metrics& {
      for (const TrialResult& r : results) {
        if (static_cast<int>(r.trial.params.at("alg")) ==
                static_cast<int>(a) &&
            static_cast<int>(r.trial.params.at("sched")) ==
                static_cast<int>(s)) {
          return r.metrics;
        }
      }
      throw std::logic_error("progress_hierarchy: missing trial");
    };
    auto describe = [](const Metrics& m) -> std::string {
      if (m.at("completions") < 0.5) return "HALTED (0 ops)";
      if (!exp::flag(m.at("everyone"))) {
        return "starvation (" + fmt(m.at("completions"), 0) + " ops)";
      }
      return "all progress (" + fmt(m.at("completions"), 0) + " ops)";
    };

    Table table({"algorithm", "uniform stochastic", "lock-step",
                 "starving adversary", "uniform + crash"});
    for (int a = 0; a < 4; ++a) {
      const Alg alg = static_cast<Alg>(a);
      table.add_row({alg_name(alg), describe(cell(alg, Sched::kUniform)),
                     describe(cell(alg, Sched::kLockStep)),
                     describe(cell(alg, Sched::kStarver)),
                     describe(cell(alg, Sched::kUniformWithCrash))});
    }
    table.print(os);

    auto everyone = [&](Alg a, Sched s) {
      return exp::flag(cell(a, s).at("everyone"));
    };
    auto completions = [&](Alg a, Sched s) {
      return cell(a, s).at("completions");
    };

    // The separations the theory predicts.
    const bool uniform_all_good =
        everyone(Alg::kSpinlock, Sched::kUniform) &&
        everyone(Alg::kObstruction, Sched::kUniform) &&
        everyone(Alg::kLockFree, Sched::kUniform) &&
        everyone(Alg::kWaitFree, Sched::kUniform);
    const bool of_livelocks_lockstep =
        completions(Alg::kObstruction, Sched::kLockStep) <
        completions(Alg::kLockFree, Sched::kLockStep) / 100;
    const bool lf_survives_lockstep =
        completions(Alg::kLockFree, Sched::kLockStep) >
        (options.quick ? 2'000 : 10'000);
    const bool lf_starved = !everyone(Alg::kLockFree, Sched::kStarver);
    const bool wf_survives_starver =
        everyone(Alg::kWaitFree, Sched::kStarver);
    const bool blocking_halts_on_crash =
        completions(Alg::kSpinlock, Sched::kUniformWithCrash) <
        completions(Alg::kLockFree, Sched::kUniformWithCrash) / 100;
    const bool nonblocking_survive_crash =
        everyone(Alg::kObstruction, Sched::kUniformWithCrash) &&
        everyone(Alg::kLockFree, Sched::kUniformWithCrash) &&
        everyone(Alg::kWaitFree, Sched::kUniformWithCrash);

    os << "\nseparations observed:\n"
       << "  OF livelocks under lock-step, LF does not:        "
       << (of_livelocks_lockstep && lf_survives_lockstep ? "yes" : "NO")
       << "\n  LF starves under the adversary, WF does not:      "
       << (lf_starved && wf_survives_starver ? "yes" : "NO")
       << "\n  blocking halts after a crash, non-blocking don't: "
       << (blocking_halts_on_crash && nonblocking_survive_crash ? "yes"
                                                                : "NO")
       << "\n  uniform stochastic: every rung fully progresses:  "
       << (uniform_all_good ? "yes" : "NO") << "\n";

    Verdict v;
    v.reproduced = uniform_all_good && of_livelocks_lockstep &&
                   lf_survives_lockstep && lf_starved &&
                   wf_survives_starver && blocking_halts_on_crash &&
                   nonblocking_survive_crash;
    v.detail =
        "the hierarchy separates exactly on the pathological schedules and "
        "collapses to 'practically wait-free' under the stochastic one — "
        "the paper's thesis, extended across all of Section 2.2";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<ProgressHierarchy>());

}  // namespace
