// Theorem 4 — for any algorithm in SCU(q, s) under the uniform stochastic
// scheduler, the system latency is O(q + s sqrt n) and the individual
// latency is O(n (q + s sqrt n)).
//
// Sweep over (q, s, n): for each configuration print simulated W, the
// paper's bound q + alpha s sqrt(n) (alpha fitted once on SCU(0,1)), the
// adversarial worst case Theta(q + s n), and the fairness ratio.
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

struct Config {
  std::size_t q, s;
};

std::vector<Config> sweep_configs(const RunOptions& options) {
  if (options.quick) return {{0, 1}, {0, 2}, {4, 1}, {16, 4}};
  return {{0, 1}, {0, 2}, {0, 4}, {4, 1}, {16, 1}, {16, 4}, {64, 2}};
}

std::vector<std::size_t> sweep_ns(const RunOptions& options) {
  if (options.quick) return {4, 8, 16};
  return {4, 8, 16, 32, 64};
}

std::vector<std::size_t> growth_ns(const RunOptions& options) {
  if (options.quick) return {8, 16, 32};
  return {8, 16, 32, 64, 128};
}

class Thm4ScuLatency final : public exp::Experiment {
 public:
  std::string name() const override { return "thm4_scu_latency"; }
  std::string artifact() const override {
    return "Theorem 4: SCU(q, s) system latency is O(q + s sqrt n); "
           "individual latency is n times that";
  }
  std::string claim() const override {
    return "Sweep over preamble length q, scan length s and process count n.";
  }
  std::uint64_t default_seed() const override { return 11; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid;
    for (const Config& cfg : sweep_configs(options)) {
      for (std::size_t n : sweep_ns(options)) {
        Trial t;
        t.id = "q=" + fmt(cfg.q) + " s=" + fmt(cfg.s) + " n=" + fmt(n);
        t.params = {{"q", static_cast<double>(cfg.q)},
                    {"s", static_cast<double>(cfg.s)},
                    {"n", static_cast<double>(n)}};
        t.seed = base + n + 97 * cfg.q + cfg.s;
        grid.push_back(std::move(t));
      }
    }
    // Scaling sweep for the growth exponent in n at (q, s) = (0, 2).
    for (std::size_t n : growth_ns(options)) {
      Trial t;
      t.id = "growth n=" + fmt(n);
      t.params = {{"q", 0.0}, {"s", 2.0}, {"n", static_cast<double>(n)},
                  {"growth", 1.0}};
      t.seed = base + 989 + n;
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const auto q = static_cast<std::size_t>(trial.params.at("q"));
    const auto s = static_cast<std::size_t>(trial.params.at("s"));
    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(n, s);
    opts.seed = trial.seed;
    Simulation sim(n, ScuAlgorithm::factory(q, s),
                   std::make_unique<UniformScheduler>(), opts);
    sim.run(options.horizon(100'000, 30'000));
    sim.reset_stats();
    // Scale the window so every process logs enough completions even in
    // the slowest configuration (keeps the max-over-processes fairness
    // statistic from being noise-dominated).
    sim.run(options.horizon(
        500'000 + 30'000 * static_cast<std::uint64_t>(n) * s, 100'000));
    const double w = sim.report().system_latency();
    return {{"w", w},
            {"fairness", sim.report().max_individual_latency() /
                             (static_cast<double>(n) * w)}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    // The paper's analysis uses the constant alpha >= 4 (Lemma 8); the
    // exact SCU(0,1) chain shows the empirical constant is smaller:
    const std::size_t alpha_n = options.quick ? 32 : 64;
    const double empirical_alpha =
        markov::system_latency(
            markov::build_scan_validate_system_chain(alpha_n)) /
        std::sqrt(static_cast<double>(alpha_n));
    const double alpha = 4.0;
    os << "empirical constant W(0,1," << alpha_n << ")/sqrt(" << alpha_n
       << ") = " << fmt(empirical_alpha, 3)
       << "; the bound below uses the paper's alpha = 4\n\n";

    auto result_at = [&](std::size_t q, std::size_t s, std::size_t n,
                         bool growth) -> const TrialResult* {
      for (const TrialResult& r : results) {
        if (r.trial.params.count("growth") != growth) continue;
        if (static_cast<std::size_t>(r.trial.params.at("q")) == q &&
            static_cast<std::size_t>(r.trial.params.at("s")) == s &&
            static_cast<std::size_t>(r.trial.params.at("n")) == n) {
          return &r;
        }
      }
      return nullptr;
    };

    bool bound_holds = true;
    bool fair = true;
    const double fair_lo = options.quick ? 0.70 : 0.80;
    const double fair_hi = options.quick ? 1.45 : 1.30;
    for (const Config& cfg : sweep_configs(options)) {
      os << "SCU(q=" << cfg.q << ", s=" << cfg.s << "):\n";
      Table table({"n", "simulated W", "W/(q+s*sqrt n)", "bound q+4s*sqrt(n)",
                   "worst case q+s*n", "fairness max W_i/(n W)"});
      for (std::size_t n : sweep_ns(options)) {
        const TrialResult* r = result_at(cfg.q, cfg.s, n, false);
        if (!r) continue;
        const double w = r->metrics.at("w");
        const double fairness = r->metrics.at("fairness");
        const double bound =
            theory::scu_system_latency(cfg.q, cfg.s, n, alpha);
        const double worst =
            theory::scu_worst_case_system_latency(cfg.q, cfg.s, n);
        const double ratio =
            w / theory::scu_system_latency(cfg.q, cfg.s, n, 1.0);
        table.add_row({fmt(n), fmt(w, 2), fmt(ratio, 2), fmt(bound, 2),
                       fmt(worst, 2), fmt(fairness, 3)});
        bound_holds = bound_holds && w <= bound;
        fair = fair && fairness > fair_lo && fairness < fair_hi;
      }
      table.print(os);
    }

    // Scaling exponent in n for pure scan-validate configs: ~0.5.
    std::vector<double> ns, ws;
    for (std::size_t n : growth_ns(options)) {
      const TrialResult* r = result_at(0, 2, n, true);
      if (!r) continue;
      ns.push_back(static_cast<double>(n));
      ws.push_back(r->metrics.at("w"));
    }
    const LinearFit fit = fit_power_law(ns, ws);
    os << "SCU(0,2) growth exponent in n: " << fmt(fit.slope, 3)
       << " (0.5 predicted asymptotically; at these n the s > 1 "
          "configurations show a mild finite-size excess, while s = 1 "
          "fits 0.5 — see thm5_scan_validate)\n";

    const double slope_lo = options.quick ? 0.30 : 0.40;
    const double slope_hi = options.quick ? 0.80 : 0.70;
    Verdict v;
    v.reproduced = bound_holds && fair && fit.slope > slope_lo &&
                   fit.slope < slope_hi;
    v.detail =
        "W <= q + alpha s sqrt(n) across the sweep, sqrt-n growth, far "
        "below the adversarial q + s n, and n-fair individual latencies";
    v.summary = {{"growth_exponent", fit.slope},
                 {"empirical_alpha", empirical_alpha},
                 {"bound_holds", bound_holds ? 1.0 : 0.0},
                 {"fair", fair ? 1.0 : 0.0}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Thm4ScuLatency>());

}  // namespace
