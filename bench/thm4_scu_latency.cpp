// Theorem 4 — for any algorithm in SCU(q, s) under the uniform stochastic
// scheduler, the system latency is O(q + s sqrt n) and the individual
// latency is O(n (q + s sqrt n)).
//
// Sweep over (q, s, n): for each configuration print simulated W, the
// paper's bound q + alpha s sqrt(n) (alpha fitted once on SCU(0,1)), the
// adversarial worst case Theta(q + s n), and the fairness ratio.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Result {
  double w = 0.0;
  double fairness = 0.0;
};

Result simulate(std::size_t n, std::size_t q, std::size_t s,
                std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, s);
  opts.seed = seed;
  Simulation sim(n, ScuAlgorithm::factory(q, s),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  sim.reset_stats();
  // Scale the window so every process logs >= ~1000 completions even in
  // the slowest configuration (keeps the max-over-processes fairness
  // statistic from being noise-dominated).
  sim.run(500'000 + 30'000 * static_cast<std::uint64_t>(n) * s);
  Result r;
  r.w = sim.report().system_latency();
  r.fairness = sim.report().max_individual_latency() /
               (static_cast<double>(n) * r.w);
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Theorem 4: SCU(q, s) system latency is O(q + s sqrt n); "
      "individual latency is n times that",
      "Sweep over preamble length q, scan length s and process count n.");
  bench::print_seed(11);

  // The paper's analysis uses the constant alpha >= 4 (Lemma 8); the exact
  // SCU(0,1) chain shows the empirical constant is smaller:
  const double empirical_alpha =
      markov::system_latency(markov::build_scan_validate_system_chain(64)) /
      std::sqrt(64.0);
  const double alpha = 4.0;
  std::cout << "empirical constant W(0,1,64)/sqrt(64) = "
            << fmt(empirical_alpha, 3)
            << "; the bound below uses the paper's alpha = 4\n\n";

  struct Config {
    std::size_t q, s;
  };
  const std::vector<Config> configs{{0, 1}, {0, 2}, {0, 4}, {4, 1},
                                    {16, 1}, {16, 4}, {64, 2}};
  bool bound_holds = true;
  bool fair = true;
  for (const Config& cfg : configs) {
    std::cout << "SCU(q=" << cfg.q << ", s=" << cfg.s << "):\n";
    Table table({"n", "simulated W", "W/(q+s*sqrt n)", "bound q+4s*sqrt(n)",
                 "worst case q+s*n", "fairness max W_i/(n W)"});
    for (std::size_t n : {4, 8, 16, 32, 64}) {
      const Result r = simulate(n, cfg.q, cfg.s, 11 + n + 97 * cfg.q + cfg.s);
      const double bound = theory::scu_system_latency(cfg.q, cfg.s, n, alpha);
      const double worst =
          theory::scu_worst_case_system_latency(cfg.q, cfg.s, n);
      const double ratio =
          r.w / theory::scu_system_latency(cfg.q, cfg.s, n, 1.0);
      table.add_row({fmt(n), fmt(r.w, 2), fmt(ratio, 2), fmt(bound, 2),
                     fmt(worst, 2), fmt(r.fairness, 3)});
      bound_holds = bound_holds && r.w <= bound;
      fair = fair && r.fairness > 0.8 && r.fairness < 1.3;
    }
    table.print(std::cout);
  }

  // Scaling exponent in n for pure scan-validate configs: ~0.5.
  std::vector<double> ns, ws;
  for (std::size_t n : {8, 16, 32, 64, 128}) {
    ns.push_back(static_cast<double>(n));
    ws.push_back(simulate(n, 0, 2, 1000 + n).w);
  }
  const LinearFit fit = fit_power_law(ns, ws);
  std::cout << "SCU(0,2) growth exponent in n: " << fmt(fit.slope, 3)
            << " (0.5 predicted asymptotically; at these n the s > 1 "
               "configurations show a mild finite-size excess, while s = 1 "
               "fits 0.5 — see thm5_scan_validate)\n";

  const bool reproduced =
      bound_holds && fair && fit.slope > 0.40 && fit.slope < 0.70;
  bench::print_verdict(reproduced,
                       "W <= q + alpha s sqrt(n) across the sweep, sqrt-n "
                       "growth, far below the adversarial q + s n, and "
                       "n-fair individual latencies");
  return reproduced ? 0 : 1;
}
