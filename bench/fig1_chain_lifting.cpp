// Figure 1 — "The individual chain and the global chain for two processes"
// plus the lifting between them (paper, Section 6.1.1 and Lemmas 4-5).
//
// Regenerates the figure as data: enumerates both chains for n = 2 (and the
// analogous fetch-and-increment pair of Section 7.1), prints every state
// with its stationary probability and transitions, and verifies the lifting
// homomorphism numerically. Everything here is exact chain analysis — the
// trials carry no randomness, only the (cheap, deterministic) numerics.
#include <cmath>
#include <ostream>
#include <vector>

#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "markov/graph.hpp"
#include "markov/lifting.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::markov;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

struct Pair {
  BuiltChain ind, sys;
  std::vector<std::size_t> f;
};

Pair build_pair(bool fai) {
  if (fai) {
    Pair p{build_fai_individual_chain(2), build_fai_global_chain(2), {}};
    p.f = fai_lifting_map(p.ind, p.sys);
    return p;
  }
  Pair p{build_scan_validate_individual_chain(2),
         build_scan_validate_system_chain(2), {}};
  p.f = scan_validate_lifting_map(p.ind, p.sys, 2);
  return p;
}

void print_chain(std::ostream& os, const std::string& title,
                 const BuiltChain& built,
                 const std::vector<std::size_t>* lifting_map) {
  os << "\n--- " << title << " (" << built.chain.num_states()
     << " states) ---\n";
  const auto pi = built.chain.stationary();
  std::vector<std::string> header{"state", "pi", "P[success]"};
  if (lifting_map) header.push_back("f(state)");
  Table table(header);
  for (std::size_t s = 0; s < built.chain.num_states(); ++s) {
    std::vector<std::string> row{built.state_names[s], fmt(pi[s], 4),
                                 fmt(built.success_prob[s], 3)};
    if (lifting_map) row.push_back(fmt((*lifting_map)[s]));
    table.add_row(std::move(row));
  }
  table.print(os);

  os << "transitions:\n";
  for (std::size_t s = 0; s < built.chain.num_states(); ++s) {
    os << "  " << built.state_names[s] << " -> ";
    bool first = true;
    for (const auto& t : built.chain.transitions_from(s)) {
      if (!first) os << ", ";
      os << built.state_names[t.to] << " (" << fmt(t.prob, 2) << ")";
      first = false;
    }
    os << '\n';
  }
}

class Fig1ChainLifting final : public exp::Experiment {
 public:
  std::string name() const override { return "fig1_chain_lifting"; }
  std::string artifact() const override {
    return "Figure 1 / Lemmas 4-7: chains for two processes";
  }
  std::string claim() const override {
    return "The scan-validate individual chain (3^2 - 1 = 8 states) "
           "collapses onto the (a, b) system chain via a Markov-chain "
           "lifting.";
  }
  std::uint64_t default_seed() const override { return 1; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid(2);
    grid[0].id = "scan-validate n=2";
    grid[0].params = {{"fai", 0.0}};
    grid[0].seed = base;
    grid[1].id = "fetch-and-increment n=2";
    grid[1].params = {{"fai", 1.0}};
    grid[1].seed = base + 1;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& /*options*/) const override {
    const Pair p = build_pair(trial.params.at("fai") > 0.5);
    const auto check = verify_lifting(p.ind.chain, p.sys.chain, p.f, 1e-9);
    const double w_ind = system_latency(p.ind);
    const double wi = individual_latency_p0(p.ind);
    return {{"flow_error", check.max_flow_error},
            {"stationary_error", check.max_stationary_error},
            {"is_lifting", check.is_lifting ? 1.0 : 0.0},
            {"w_individual_chain", w_ind},
            {"w_system_chain", system_latency(p.sys)},
            {"wi_p0", wi},
            {"wi_over_w", wi / w_ind}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    bool all_ok = true;
    for (const TrialResult& r : results) {
      const bool fai = r.trial.params.at("fai") > 0.5;
      const std::string what =
          fai ? "fetch-and-increment, n=2" : "scan-validate, n=2";
      if (fai) {
        os << "\n(For comparison, Section 7.1's fetch-and-increment pair, "
              "n=2: 2^2 - 1 = 3 states.)\n";
      }
      const Pair p = build_pair(fai);
      print_chain(os, what + ": individual chain", p.ind, &p.f);
      print_chain(os, what + ": system chain", p.sys, nullptr);

      const Metrics& m = r.metrics;
      os << "\nlifting check (" << what << "): flow error "
         << m.at("flow_error") << ", stationary error "
         << m.at("stationary_error") << " -> "
         << (exp::flag(m.at("is_lifting")) ? "LIFTING VERIFIED"
                                           : "NOT A LIFTING")
         << '\n';
      const double w_ind = m.at("w_individual_chain");
      const double wi = m.at("wi_p0");
      os << "W (from individual chain)  = " << fmt(w_ind, 6) << '\n'
         << "W (from system chain)      = " << fmt(m.at("w_system_chain"), 6)
         << '\n'
         << "W_i (process 0)            = " << fmt(wi, 6) << " = "
         << fmt(m.at("wi_over_w"), 4)
         << " x W   (Lemma 7 predicts n x W)\n";
      all_ok = all_ok && exp::flag(m.at("is_lifting")) &&
               std::abs(wi - 2.0 * w_ind) < 1e-4 * wi;
    }

    Verdict v;
    v.reproduced = all_ok;
    v.detail =
        "both liftings verified numerically; W_i = n * W on each pair";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Fig1ChainLifting>());

}  // namespace
