// Figure 1 — "The individual chain and the global chain for two processes"
// plus the lifting between them (paper, Section 6.1.1 and Lemmas 4-5).
//
// Regenerates the figure as data: enumerates both chains for n = 2 (and the
// analogous fetch-and-increment pair of Section 7.1), prints every state
// with its stationary probability and transitions, and verifies the lifting
// homomorphism numerically.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "markov/builders.hpp"
#include "markov/graph.hpp"
#include "markov/lifting.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::markov;

void print_chain(const std::string& title, const BuiltChain& built,
                 const std::vector<std::size_t>* lifting_map) {
  std::cout << "\n--- " << title << " (" << built.chain.num_states()
            << " states) ---\n";
  const auto pi = built.chain.stationary();
  std::vector<std::string> header{"state", "pi", "P[success]"};
  if (lifting_map) header.push_back("f(state)");
  Table table(header);
  for (std::size_t s = 0; s < built.chain.num_states(); ++s) {
    std::vector<std::string> row{built.state_names[s], fmt(pi[s], 4),
                                 fmt(built.success_prob[s], 3)};
    if (lifting_map) row.push_back(fmt((*lifting_map)[s]));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "transitions:\n";
  for (std::size_t s = 0; s < built.chain.num_states(); ++s) {
    std::cout << "  " << built.state_names[s] << " -> ";
    bool first = true;
    for (const auto& t : built.chain.transitions_from(s)) {
      if (!first) std::cout << ", ";
      std::cout << built.state_names[t.to] << " (" << fmt(t.prob, 2) << ")";
      first = false;
    }
    std::cout << '\n';
  }
}

bool report_pair(const std::string& what, const BuiltChain& ind,
                 const BuiltChain& sys, const std::vector<std::size_t>& f) {
  print_chain(what + ": individual chain", ind, &f);
  print_chain(what + ": system chain", sys, nullptr);

  const auto check = verify_lifting(ind.chain, sys.chain, f, 1e-9);
  std::cout << "\nlifting check (" << what << "): flow error "
            << check.max_flow_error << ", stationary error "
            << check.max_stationary_error << " -> "
            << (check.is_lifting ? "LIFTING VERIFIED" : "NOT A LIFTING")
            << '\n';
  const double w_ind = system_latency(ind);
  const double w_sys = system_latency(sys);
  const double wi = individual_latency_p0(ind);
  std::cout << "W (from individual chain)  = " << fmt(w_ind, 6) << '\n'
            << "W (from system chain)      = " << fmt(w_sys, 6) << '\n'
            << "W_i (process 0)            = " << fmt(wi, 6) << " = "
            << fmt(wi / w_ind, 4) << " x W   (Lemma 7 predicts n x W)\n";
  return check.is_lifting && std::abs(wi - 2.0 * w_ind) < 1e-4 * wi;
}

}  // namespace

int main() {
  pwf::bench::print_header(
      "Figure 1 / Lemmas 4-7: chains for two processes",
      "The scan-validate individual chain (3^2 - 1 = 8 states) collapses "
      "onto the (a, b) system chain via a Markov-chain lifting.");

  const BuiltChain ind = build_scan_validate_individual_chain(2);
  const BuiltChain sys = build_scan_validate_system_chain(2);
  const auto f = scan_validate_lifting_map(ind, sys, 2);
  const bool ok_sv = report_pair("scan-validate, n=2", ind, sys, f);

  std::cout << "\n(For comparison, Section 7.1's fetch-and-increment pair, "
               "n=2: 2^2 - 1 = 3 states.)\n";
  const BuiltChain find = build_fai_individual_chain(2);
  const BuiltChain fglob = build_fai_global_chain(2);
  const auto ff = fai_lifting_map(find, fglob);
  const bool ok_fai = report_pair("fetch-and-increment, n=2", find, fglob, ff);

  pwf::bench::print_verdict(
      ok_sv && ok_fai,
      "both liftings verified numerically; W_i = n * W on each pair");
  return (ok_sv && ok_fai) ? 0 : 1;
}
