// reclaim_tail: tail latency and memory robustness of the pwf::mem
// reclamation spectrum under an injected thread stall (DESIGN.md §7,
// docs/API.md "pwf::mem").
//
// The paper's open question behind this experiment: lock-free structures
// are practically wait-free under stochastic schedulers, but their
// *memory reclamation* usually is not — epoch-based reclamation stops
// reclaiming entirely while any reader stays pinned, so one stalled
// thread (preempted mid-operation, descheduled by the OS, crashed) turns
// bounded memory into memory that grows with every subsequent operation.
// The era-interval policies (mem::HazardEra, mem::WaitFreePool) only
// block the handful of blocks whose lifetime intersects the staller's
// frozen reservation, so garbage stays bounded by a constant.
//
// Protocol, per (policy, stall, ops) grid point: one TreiberStack, four
// churn threads doing timed push/pop pairs, and — in the stall rows — a
// fifth thread that pins, performs one protected load, and then sleeps
// until the churners finish (the injected stall). Each operation's wall
// latency feeds a QuantileSketch (p50/p99/p999); the domain's
// peak_retired_bytes high-water mark is the robustness metric.
//
// Verdict: with a staller and 4x the operations, Epoch's peak retired
// bytes grow ~4x (unbounded in ops) while WaitFreePool's and
// HazardEra's stay within 2x (bounded by a constant), the pool never
// throws PoolExhausted, and every policy's churn completes. Latency
// quantiles are reported (and committed in BENCH_reclaim.json) rather
// than gated — they are host numbers.
//
// scripts/bench_reclaim.sh serializes the sweep into BENCH_reclaim.json.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/registry.hpp"
#include "lockfree/treiber_stack.hpp"
#include "mem/epoch.hpp"
#include "mem/hazard_era.hpp"
#include "mem/pool.hpp"
#include "util/quantile.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kChurnThreads = 4;

template <typename Mem>
std::unique_ptr<typename Mem::Domain> make_domain(std::size_t block_bytes) {
  // +2 reservation slots: the staller and the pool's constructor-path
  // temporary handle.
  const std::size_t max_threads = kChurnThreads + 2;
  if constexpr (std::is_same_v<Mem, mem::WaitFreePool>) {
    // The bounded-garbage property under test is what makes a fixed
    // arena sufficient: steady state needs the stack residue plus each
    // handle's pending retirements plus the blocks pinned around the
    // staller's frozen reservation — thousands, not ops-proportional.
    return std::make_unique<mem::WaitFreePoolDomain>(block_bytes, 1 << 15,
                                                     max_threads);
  } else if constexpr (std::is_same_v<Mem, mem::HazardEra>) {
    return std::make_unique<mem::HazardEraDomain>(max_threads);
  } else {
    return std::make_unique<lockfree::EbrDomain>(max_threads);
  }
}

struct ChurnOut {
  QuantileSketch latency;  ///< per-op wall ns, merged over churn threads
  std::uint64_t peak_retired_bytes = 0;
  std::uint64_t ops = 0;
  bool exhausted = false;  ///< the pool threw PoolExhausted
  double wall_sec = 0.0;
};

template <typename Mem>
ChurnOut run_churn(std::uint64_t ops_per_thread, bool stall) {
  using Stack = lockfree::TreiberStack<std::uint64_t, lockfree::NoStamp, Mem>;
  auto domain = make_domain<Mem>(Stack::kNodeBytes);
  Stack stack(*domain);

  std::atomic<bool> staller_ready{!stall};
  std::atomic<bool> release{false};
  std::atomic<bool> exhausted{false};
  std::vector<std::unique_ptr<QuantileSketch>> sketches(kChurnThreads);

  std::thread staller;
  if (stall) {
    staller = std::thread([&] {
      typename Mem::ThreadHandle handle(*domain);
      // A mid-operation stall: the thread has pinned and issued a
      // protected load, then stops making progress. Its reservation
      // stays published until release.
      std::atomic<std::uint64_t*> src{nullptr};
      auto* block = Mem::template create<std::uint64_t>(handle, 0);
      src.store(block, std::memory_order_release);
      {
        const auto guard = handle.pin();
        (void)Mem::load(handle, src);
        staller_ready.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      Mem::retire(handle, src.load(std::memory_order_relaxed));
    });
    while (!staller_ready.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  std::vector<std::thread> churners;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnThreads; ++i) {
    sketches[i] = std::make_unique<QuantileSketch>();
    churners.emplace_back([&, i] {
      try {
        typename Mem::ThreadHandle handle(*domain);
        for (std::uint64_t k = 0; k < ops_per_thread; ++k) {
          const auto a = std::chrono::steady_clock::now();
          stack.push(handle, k);
          const auto b = std::chrono::steady_clock::now();
          stack.pop(handle);
          const auto c = std::chrono::steady_clock::now();
          sketches[i]->add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                  .count()));
          sketches[i]->add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(c - b)
                  .count()));
        }
      } catch (const mem::PoolExhausted&) {
        exhausted.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : churners) th.join();
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (stall) {
    release.store(true, std::memory_order_release);
    staller.join();
  }

  ChurnOut out;
  for (const auto& s : sketches) out.latency.merge(*s);
  out.ops = out.latency.count();
  out.peak_retired_bytes = domain->peak_retired_bytes();
  out.exhausted = exhausted.load(std::memory_order_relaxed);
  out.wall_sec = wall_sec;
  return out;
}

ChurnOut run_policy(mem::ReclaimPolicy policy, std::uint64_t ops_per_thread,
                    bool stall) {
  switch (policy) {
    case mem::ReclaimPolicy::kHazardEra:
      return run_churn<mem::HazardEra>(ops_per_thread, stall);
    case mem::ReclaimPolicy::kPool:
      return run_churn<mem::WaitFreePool>(ops_per_thread, stall);
    case mem::ReclaimPolicy::kEpoch:
      break;
  }
  return run_churn<mem::Epoch>(ops_per_thread, stall);
}

class ReclaimTail final : public exp::Experiment {
 public:
  std::string name() const override { return "reclaim_tail"; }
  std::string artifact() const override {
    return "pwf::mem reclamation spectrum: per-policy op latency tails and "
           "peak retired memory under an injected thread stall (src/mem)";
  }
  std::string claim() const override {
    return "Claim: with one stalled pinned thread, epoch reclamation's "
           "peak retired memory grows in proportion to the operation "
           "count, while the hazard-era and wait-free-pool policies keep "
           "it bounded by a constant (and the fixed pool arena never "
           "exhausts); per-policy p99/p999 op latencies quantify what the "
           "robustness costs on the fast path.";
  }
  std::uint64_t default_seed() const override { return 20130715; }

  // Wall-clock latency on real threads: run alone, host-dependent.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::uint64_t small = options.quick ? 5'000 : 20'000;
    const std::uint64_t large = 4 * small;
    std::vector<Trial> grid;
    std::uint64_t idx = 0;
    for (const mem::ReclaimPolicy policy : mem::kAllReclaimPolicies) {
      if (!options.reclaim.empty() &&
          mem::parse_reclaim_policy(options.reclaim) != policy) {
        continue;
      }
      for (const bool stall : {false, true}) {
        for (const std::uint64_t ops : {small, large}) {
          Trial t;
          t.id = std::string(mem::reclaim_policy_name(policy)) +
                 (stall ? " stall" : " no-stall") +
                 " ops=" + std::to_string(ops);
          t.params = {{"policy", static_cast<double>(policy)},
                      {"stall", stall ? 1.0 : 0.0},
                      {"ops", static_cast<double>(ops)}};
          t.seed = exp::derive_seed(base, idx++);
          grid.push_back(std::move(t));
        }
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    (void)options;
    const auto policy =
        static_cast<mem::ReclaimPolicy>(static_cast<int>(trial.params.at("policy")));
    const auto ops = static_cast<std::uint64_t>(trial.params.at("ops"));
    const bool stall = trial.params.at("stall") > 0.5;
    const ChurnOut r = run_policy(policy, ops, stall);
    return {{"p50_ns", static_cast<double>(r.latency.quantile(0.50))},
            {"p99_ns", static_cast<double>(r.latency.quantile(0.99))},
            {"p999_ns", static_cast<double>(r.latency.quantile(0.999))},
            {"max_ns", static_cast<double>(r.latency.max())},
            {"peak_retired_bytes", static_cast<double>(r.peak_retired_bytes)},
            {"ops", static_cast<double>(r.ops)},
            {"exhausted", r.exhausted ? 1.0 : 0.0},
            {"mops_per_sec", static_cast<double>(r.ops) / r.wall_sec / 1e6}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override;
};

Verdict ReclaimTail::analyze(const std::vector<TrialResult>& results,
                             const RunOptions& /*options*/,
                             std::ostream& os) const {
  Verdict verdict;
  Table table({"policy", "stall", "ops/thread", "p50 ns", "p99 ns", "p999 ns",
               "peak retired KiB"});

  // peak[policy][0] = stalled small-ops peak bytes, [1] = stalled large.
  double peak[3][2] = {};
  double ops_seen[3][2] = {};
  bool exhausted = false;
  bool complete = true;

  for (const TrialResult& r : results) {
    const Metrics& m = r.metrics;
    const auto policy = static_cast<mem::ReclaimPolicy>(
        static_cast<int>(r.trial.params.at("policy")));
    const bool stall = r.trial.params.at("stall") > 0.5;
    const double ops = r.trial.params.at("ops");
    table.add_row({mem::reclaim_policy_name(policy), stall ? "yes" : "no",
                   fmt(ops, 0), fmt(m.at("p50_ns"), 0), fmt(m.at("p99_ns"), 0),
                   fmt(m.at("p999_ns"), 0),
                   fmt(m.at("peak_retired_bytes") / 1024.0, 1)});
    exhausted = exhausted || exp::flag(m.at("exhausted"));
    // Every churn must complete its full push+pop schedule.
    complete = complete &&
               m.at("ops") >= 2.0 * ops * static_cast<double>(kChurnThreads);
    if (stall) {
      const int p = static_cast<int>(policy);
      const int col = ops_seen[p][0] == 0.0 ? 0 : 1;
      peak[p][col] = m.at("peak_retired_bytes");
      ops_seen[p][col] = ops;
    }
    const std::string tag = std::string(mem::reclaim_policy_name(policy)) +
                            (stall ? "_stall" : "_nostall") + "_ops" +
                            std::to_string(static_cast<std::uint64_t>(ops));
    verdict.summary["p99_ns_" + tag] = m.at("p99_ns");
    verdict.summary["p999_ns_" + tag] = m.at("p999_ns");
    verdict.summary["peak_retired_bytes_" + tag] = m.at("peak_retired_bytes");
  }

  os << "op latency and peak retired memory by reclamation policy\n"
     << "(4 churn threads; stall = a fifth thread pinned mid-operation "
        "for the whole run)\n\n";
  table.print(os);
  os << "\npeak retired KiB is the domain's high-water mark of "
        "retired-but-unreclaimed payload bytes. Under a stall it is the "
        "robustness axis: epoch cannot reclaim past the staller's pinned "
        "epoch, so the mark scales with the operation count; the era "
        "policies only block blocks whose lifetime intersects the "
        "staller's frozen reservation.\n";

  auto growth = [&](mem::ReclaimPolicy p) {
    const int i = static_cast<int>(p);
    return peak[i][1] / std::max(peak[i][0], 1.0);
  };
  const double epoch_growth = growth(mem::ReclaimPolicy::kEpoch);
  const double hazard_growth = growth(mem::ReclaimPolicy::kHazardEra);
  const double pool_growth = growth(mem::ReclaimPolicy::kPool);
  const int ep = static_cast<int>(mem::ReclaimPolicy::kEpoch);
  const int po = static_cast<int>(mem::ReclaimPolicy::kPool);
  const double epoch_over_pool = peak[ep][1] / std::max(peak[po][1], 1.0);

  verdict.summary["epoch_stall_peak_growth"] = epoch_growth;
  verdict.summary["hazard_stall_peak_growth"] = hazard_growth;
  verdict.summary["pool_stall_peak_growth"] = pool_growth;
  verdict.summary["epoch_over_pool_stall_peak"] = epoch_over_pool;
  verdict.summary["pool_exhausted"] = exhausted ? 1.0 : 0.0;

  const bool swept_all = ops_seen[ep][1] > 0.0 && ops_seen[po][1] > 0.0 &&
                         ops_seen[static_cast<int>(
                             mem::ReclaimPolicy::kHazardEra)][1] > 0.0;
  if (!swept_all) {
    // --reclaim restricted the sweep: report, don't judge the contrast.
    verdict.reproduced = !exhausted && complete;
    verdict.detail = "partial sweep (--reclaim): growth contrast not judged";
    return verdict;
  }

  // The ops ratio between the two stalled grid points is 4x: epoch's
  // peak must track it (>= 2.5x leaves slack for the pre-stall
  // transient) while the era policies stay within 2.5x of their
  // small-run constant — their peak is capped by the scan cadence
  // (kScanThreshold pending blocks per handle), not by the op count,
  // so the ratio only reflects how close the small run got to that
  // ceiling. The headline separation is epoch/pool at the large size.
  const bool epoch_unbounded = epoch_growth >= 2.5;
  const bool era_bounded = hazard_growth < 2.5 && pool_growth < 2.5;
  verdict.reproduced =
      epoch_unbounded && era_bounded && epoch_over_pool >= 8.0 &&
      !exhausted && complete;
  verdict.detail = "stalled peak growth (4x ops): epoch " +
                   fmt(epoch_growth, 2) + "x, hazard " +
                   fmt(hazard_growth, 2) + "x, pool " + fmt(pool_growth, 2) +
                   "x; epoch/pool peak " + fmt(epoch_over_pool, 1) + "x" +
                   (exhausted ? "; POOL EXHAUSTED" : "");
  return verdict;
}

const exp::RegisterExperiment reg(std::make_unique<ReclaimTail>());

}  // namespace
