// Reference [1, Figure 6] analogue — the empirical observation the paper
// builds on: "the latency distribution of individual operations of a
// lock-free stack" is tightly concentrated, i.e. lock-free operations
// behave wait-free in practice.
//
// Reproduced inside the model: per-operation latency distribution of the
// scan-validate pattern (the stack's push/pop skeleton) under the uniform
// stochastic scheduler, printed as a histogram with percentiles, plus the
// tail decay P[latency > k * mean].
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "markov/builders.hpp"
#include "markov/op_latency.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace pwf;
  using namespace pwf::core;

  bench::print_header(
      "Appendix-grade check (paper ref [1], Fig. 6): per-operation latency "
      "distribution of a lock-free structure",
      "Claim: individual operation latencies concentrate near the mean "
      "with an exponentially decaying tail - 'practically wait-free'.");
  constexpr std::size_t kN = 16;
  constexpr std::uint64_t kSteps = 4'000'000;
  bench::print_seed(61);

  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
  opts.seed = 61;
  Simulation sim(kN, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  LatencyDistributionObserver observer(kN, 50'000.0, 5'000);
  sim.set_observer(&observer);
  sim.run(kSteps);

  const double mean = observer.stats().mean();
  const auto& hist = observer.histogram();
  std::cout << "operations observed: " << observer.stats().count()
            << ", mean individual latency: " << fmt(mean, 1)
            << " system steps (n * W = " << fmt(16.0 * sim.report().system_latency(), 1)
            << ")\n\n";

  Table pct({"percentile", "latency (system steps)", "x mean"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
    const double v = hist.quantile(q);
    pct.add_row({fmt(100.0 * q, 1) + "%", fmt(v, 0), fmt(v / mean, 2)});
  }
  pct.add_row({"max", fmt(observer.max_latency()),
               fmt(static_cast<double>(observer.max_latency()) / mean, 2)});
  pct.print(std::cout);

  std::cout << "\ntail decay:\n";
  Table tail({"threshold", "P[latency > threshold]"});
  bool decaying = true;
  double prev = 1.0;
  for (int k = 1; k <= 6; ++k) {
    const double frac = observer.tail_fraction(k * 2.0 * mean);
    tail.add_row({fmt(2 * k) + " x mean", fmt(frac, 6)});
    if (frac > 0.0 && frac > prev * 0.7) decaying = false;
    if (frac > 0.0) prev = frac;
  }
  tail.print(std::cout);

  // ASCII density sketch of the bulk of the distribution.
  std::cout << "\nlatency density (up to 4x mean):\n";
  const double hi = 4.0 * mean;
  constexpr int kRows = 16;
  for (int r = 0; r < kRows; ++r) {
    const double lo_edge = hi * r / kRows;
    const double hi_edge = hi * (r + 1) / kRows;
    std::uint64_t count = 0;
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
      if (hist.bucket_lo(b) >= lo_edge && hist.bucket_lo(b) < hi_edge) {
        count += hist.bucket_count(b);
      }
    }
    const int bar = static_cast<int>(
        60.0 * static_cast<double>(count) /
        static_cast<double>(hist.total()));
    std::cout << fmt(lo_edge, 0) << "\t" << std::string(bar, '#') << "\n";
  }

  // Exact cross-check at small n: the chain determines the entire
  // per-operation latency law (markov/op_latency.hpp); compare it with a
  // fresh simulation at n = 4.
  std::cout << "\nexact phase-type law vs simulation at n = 4:\n";
  bool exact_matches = true;
  {
    constexpr std::size_t kSmallN = 4;
    const auto ind = markov::build_scan_validate_individual_chain(kSmallN);
    const auto law = markov::op_latency_distribution(ind, 2'000);
    Simulation::Options small_opts;
    small_opts.num_registers = ScuAlgorithm::registers_required(kSmallN, 1);
    small_opts.seed = 62;
    Simulation small_sim(kSmallN, scan_validate_factory(),
                         std::make_unique<UniformScheduler>(), small_opts);
    LatencyDistributionObserver small_obs(kSmallN, 2'000.0, 2'000);
    small_sim.set_observer(&small_obs);
    small_sim.run(2'000'000);
    Table cmp({"t (steps)", "exact P[latency=t]", "simulated"});
    const double total = static_cast<double>(small_obs.histogram().total());
    for (std::size_t t : {2, 4, 8, 12, 16, 24, 32}) {
      const double simulated =
          static_cast<double>(small_obs.histogram().bucket_count(t)) / total;
      cmp.add_row({fmt(t), fmt(law.pmf[t], 5), fmt(simulated, 5)});
      if (std::abs(simulated - law.pmf[t]) > 0.005) exact_matches = false;
    }
    cmp.print(std::cout);
    std::cout << "exact mean " << fmt(law.mean, 3) << " vs simulated mean "
              << fmt(small_obs.stats().mean(), 3) << " (Lemma 7: n*W = "
              << fmt(markov::individual_latency_p0(ind), 3) << ")\n";
  }

  const bool reproduced = decaying && exact_matches &&
                          observer.tail_fraction(8.0 * mean) < 0.002 &&
                          static_cast<double>(observer.max_latency()) <
                              60.0 * mean;
  bench::print_verdict(reproduced,
                       "individual latencies concentrate (p99 within a few "
                       "means) and the tail decays geometrically - the "
                       "observed behaviour is wait-free for all practical "
                       "purposes");
  return reproduced ? 0 : 1;
}
