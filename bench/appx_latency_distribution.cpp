// Reference [1, Figure 6] analogue — the empirical observation the paper
// builds on: "the latency distribution of individual operations of a
// lock-free stack" is tightly concentrated, i.e. lock-free operations
// behave wait-free in practice.
//
// Reproduced inside the model: per-operation latency distribution of the
// scan-validate pattern (the stack's push/pop skeleton) under the uniform
// stochastic scheduler, printed as a histogram with percentiles, plus the
// tail decay P[latency > k * mean].
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/latency.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "markov/op_latency.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

constexpr std::size_t kN = 16;
constexpr std::size_t kDensityRows = 16;
const std::vector<double> kQuantiles{0.10, 0.25, 0.50,  0.75,
                                     0.90, 0.99, 0.999};
const std::vector<std::size_t> kPmfPoints{2, 4, 8, 12, 16, 24, 32};

std::string qkey(double q) { return "q" + fmt(1000.0 * q, 0); }

class AppxLatencyDistribution final : public exp::Experiment {
 public:
  std::string name() const override { return "appx_latency_distribution"; }
  std::string artifact() const override {
    return "Appendix-grade check (paper ref [1], Fig. 6): per-operation "
           "latency distribution of a lock-free structure";
  }
  std::string claim() const override {
    return "Claim: individual operation latencies concentrate near the "
           "mean with an exponentially decaying tail - 'practically "
           "wait-free'.";
  }
  std::uint64_t default_seed() const override { return 61; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    std::vector<Trial> grid(2);
    grid[0].id = "n=16 distribution";
    grid[0].params = {{"n", 16.0}};
    grid[0].seed = base;
    grid[1].id = "n=4 exact phase-type law";
    grid[1].params = {{"n", 4.0}, {"exact", 1.0}};
    grid[1].seed = base + 1;
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    if (trial.params.count("exact")) {
      // Exact cross-check at small n: the chain determines the entire
      // per-operation latency law (markov/op_latency.hpp); compare it
      // with a fresh simulation at n = 4.
      constexpr std::size_t kSmallN = 4;
      const auto ind = markov::build_scan_validate_individual_chain(kSmallN);
      const auto law = markov::op_latency_distribution(ind, 2'000);
      Simulation::Options opts;
      opts.num_registers = ScuAlgorithm::registers_required(kSmallN, 1);
      opts.seed = trial.seed;
      Simulation sim(kSmallN, scan_validate_factory(),
                     std::make_unique<UniformScheduler>(), opts);
      LatencyDistributionObserver obs(kSmallN, 2'000.0, 2'000);
      sim.set_observer(&obs);
      sim.run(options.horizon(2'000'000, 400'000));
      Metrics m{{"exact_mean", law.mean},
                {"sim_mean", obs.stats().mean()},
                {"exact_nw", markov::individual_latency_p0(ind)}};
      const double total = static_cast<double>(obs.histogram().total());
      for (std::size_t t : kPmfPoints) {
        m["pmf" + fmt(t) + "_exact"] = law.pmf[t];
        m["pmf" + fmt(t) + "_sim"] =
            static_cast<double>(obs.histogram().bucket_count(t)) / total;
      }
      return m;
    }

    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(kN, 1);
    opts.seed = trial.seed;
    Simulation sim(kN, scan_validate_factory(),
                   std::make_unique<UniformScheduler>(), opts);
    LatencyDistributionObserver observer(kN, 50'000.0, 5'000);
    sim.set_observer(&observer);
    sim.run(options.horizon(4'000'000, 600'000));

    const double mean = observer.stats().mean();
    const auto& hist = observer.histogram();
    Metrics m{{"ops", static_cast<double>(observer.stats().count())},
              {"mean", mean},
              {"nw", static_cast<double>(kN) *
                         sim.report().system_latency()},
              {"max_latency",
               static_cast<double>(observer.max_latency())}};
    for (double q : kQuantiles) m[qkey(q)] = hist.quantile(q);
    for (int k = 1; k <= 6; ++k) {
      m["tail" + fmt(2 * k)] = observer.tail_fraction(k * 2.0 * mean);
    }
    m["tail8x"] = observer.tail_fraction(8.0 * mean);
    // Bulk density, 16 bins up to 4x mean, as fractions of all ops.
    const double hi = 4.0 * mean;
    for (std::size_t r = 0; r < kDensityRows; ++r) {
      const double lo_edge = hi * static_cast<double>(r) / kDensityRows;
      const double hi_edge =
          hi * static_cast<double>(r + 1) / kDensityRows;
      std::uint64_t count = 0;
      for (std::size_t b = 0; b < hist.buckets(); ++b) {
        if (hist.bucket_lo(b) >= lo_edge && hist.bucket_lo(b) < hi_edge) {
          count += hist.bucket_count(b);
        }
      }
      m["density" + fmt(r)] = static_cast<double>(count) /
                              static_cast<double>(hist.total());
    }
    return m;
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    const Metrics& dist = results.at(0).metrics;
    const Metrics& exact = results.at(1).metrics;
    const double mean = dist.at("mean");

    os << "operations observed: " << fmt(dist.at("ops"), 0)
       << ", mean individual latency: " << fmt(mean, 1)
       << " system steps (n * W = " << fmt(dist.at("nw"), 1) << ")\n\n";

    Table pct({"percentile", "latency (system steps)", "x mean"});
    for (double q : kQuantiles) {
      const double v = dist.at(qkey(q));
      pct.add_row({fmt(100.0 * q, 1) + "%", fmt(v, 0), fmt(v / mean, 2)});
    }
    pct.add_row({"max", fmt(dist.at("max_latency"), 0),
                 fmt(dist.at("max_latency") / mean, 2)});
    pct.print(os);

    os << "\ntail decay:\n";
    Table tail({"threshold", "P[latency > threshold]"});
    bool decaying = true;
    double prev = 1.0;
    for (int k = 1; k <= 6; ++k) {
      const double frac = dist.at("tail" + fmt(2 * k));
      tail.add_row({fmt(2 * k) + " x mean", fmt(frac, 6)});
      if (frac > 0.0 && frac > prev * 0.7) decaying = false;
      if (frac > 0.0) prev = frac;
    }
    tail.print(os);

    // ASCII density sketch of the bulk of the distribution.
    os << "\nlatency density (up to 4x mean):\n";
    const double hi = 4.0 * mean;
    for (std::size_t r = 0; r < kDensityRows; ++r) {
      const int bar =
          static_cast<int>(60.0 * dist.at("density" + fmt(r)));
      os << fmt(hi * static_cast<double>(r) / kDensityRows, 0) << "\t"
         << std::string(bar, '#') << "\n";
    }

    os << "\nexact phase-type law vs simulation at n = 4:\n";
    Table cmp({"t (steps)", "exact P[latency=t]", "simulated"});
    bool exact_matches = true;
    const double pmf_tol = options.quick ? 0.012 : 0.005;
    for (std::size_t t : kPmfPoints) {
      const double e = exact.at("pmf" + fmt(t) + "_exact");
      const double s = exact.at("pmf" + fmt(t) + "_sim");
      cmp.add_row({fmt(t), fmt(e, 5), fmt(s, 5)});
      if (std::abs(s - e) > pmf_tol) exact_matches = false;
    }
    cmp.print(os);
    os << "exact mean " << fmt(exact.at("exact_mean"), 3)
       << " vs simulated mean " << fmt(exact.at("sim_mean"), 3)
       << " (Lemma 7: n*W = " << fmt(exact.at("exact_nw"), 3) << ")\n";

    Verdict v;
    v.reproduced = decaying && exact_matches && dist.at("tail8x") < 0.002 &&
                   dist.at("max_latency") < 60.0 * mean;
    v.detail =
        "individual latencies concentrate (p99 within a few means) and the "
        "tail decays geometrically - the observed behaviour is wait-free "
        "for all practical purposes";
    v.summary = {{"p99_over_mean", dist.at(qkey(0.99)) / mean},
                 {"tail8x", dist.at("tail8x")}};
    return v;
  }
};

const exp::RegisterExperiment reg(
    std::make_unique<AppxLatencyDistribution>());

}  // namespace
