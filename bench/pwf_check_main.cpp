// pwf_check — the linearizability checking driver. Mirrors pwf_bench's
// flag conventions over the src/check subsystem: it explores randomized
// schedules (with crash plans) per workload, checks every captured
// history, minimizes failing traces, and reports per-workload verdicts.
//
//   pwf_check --list                  enumerate workloads + hw structures
//   pwf_check --filter stack,queue    substring selection (comma-separated)
//   pwf_check --schedules 100         schedules per workload (--trials)
//   pwf_check --steps N / --n N       override horizon / process count
//   pwf_check --seed 123              base seed
//   pwf_check --shards 4              checker threads (--threads); 0 = hw
//   pwf_check --smoke                 CI preset (small, < 60 s, all checks)
//   pwf_check --hw                    also capture + check hardware runs
//   pwf_check --structure NAME        hardware structure filter ('_' == '-')
//   pwf_check --stamp-mode lin-point  interval recovery: call-boundary
//                                     (default) or lin-point
//   pwf_check --clock tsc             stamp clock: ticket (default,
//                                     global atomic) or tsc (calibrated
//                                     per-thread TSC, contention-free)
//   pwf_check --pin                   pin capture threads to CPUs
//   pwf_check --reclaim pool          reclamation policy the hardware
//                                     structures run under: epoch
//                                     (default), hazard, or pool
//   pwf_check --strategy lockfree     one strategy column of the structure
//                                     matrix: coarse | optimistic |
//                                     lockfree (see check/catalog.hpp)
//   pwf_check --hw-ops N              hardware ops per thread
//   pwf_check --hw-bursts N           independent capture rounds
//   pwf_check --jitter K              yield around every K-th hw op
//   pwf_check --minimize-ops          minimizer operation-drop pre-pass
//   pwf_check --replay t.trace        strict-replay a saved trace
//   pwf_check --save-trace PATH       save the first witness trace
//   pwf_check --out PATH              JSON report (pwf-check-report/1);
//                                     '-' means stdout
//
// Flag spellings are shared with pwf_bench via util::CliParser (--out,
// --seed, --threads, --filter, --trials mean the same thing in both).
//
// Exit status: 0 iff every selected workload matched its expectation
// (stock structures LINEARIZABLE everywhere, mutants caught with a
// replayable witness) and every hardware capture (if requested) passed.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/catalog.hpp"
#include "check/explore.hpp"
#include "check/hw_capture.hpp"
#include "check/session.hpp"
#include "check/trace.hpp"
#include "check/workloads.hpp"
#include "exp/json.hpp"
#include "lockfree/strategy.hpp"
#include "mem/reclaimer.hpp"
#include "util/cli.hpp"

namespace {

using namespace pwf;
using util::matches_filter;

struct Args {
  check::ExploreOptions explore;
  check::HwOptions hw_options;
  std::string stamp_mode;
  std::string clock_mode;
  std::string reclaim;
  std::string strategy;
  std::string filter;
  std::string out_path;
  std::string replay_path;
  std::string save_trace_path;
  bool list = false;
  bool help = false;
  bool smoke = false;
  bool hw = false;
  bool hw_ops_set = false;
  bool no_crashes = false;
  bool no_minimize = false;
  bool minimize_ops = false;
};

util::CliParser make_parser(Args& args) {
  util::CliParser cli("pwf_check");
  cli.flag("--list", "list workloads and hardware structures", &args.list)
      .option("--filter", "NAMES",
              "run workloads whose name contains any of the\n"
              "comma-separated substrings (default: all)",
              [&args](const std::string& v) { args.filter = v; })
      .option("--schedules", "N",
              "random schedules per workload (default 100)",
              [&args](const std::string& v) {
                args.explore.schedules = std::stoul(v);
              })
      .alias("--trials", "--schedules")
      .option("--steps", "N", "steps per schedule (default: per workload)",
              [&args](const std::string& v) {
                args.explore.steps = std::stoull(v);
              })
      .option("--n", "N", "processes (default: per workload)",
              [&args](const std::string& v) {
                args.explore.n = std::stoul(v);
              })
      .option("--seed", "N", "base seed (default 1)",
              [&args](const std::string& v) {
                args.explore.base_seed = std::stoull(v);
              })
      .option("--shards", "N",
              "checker worker threads for partitioned histories\n"
              "(0 = hardware, default 1)",
              [&args](const std::string& v) {
                args.explore.check.shards =
                    static_cast<std::size_t>(std::stoull(v));
              })
      .alias("--threads", "--shards")
      .option("--memo-budget", "N",
              "max memoized states per search (0 = unbounded)",
              [&args](const std::string& v) {
                args.explore.check.memo_budget = std::stoull(v);
              })
      .option("--structure", "NAME",
              "hardware structure filter; '_' is accepted for '-'\n"
              "(alias of --filter with normalization)",
              [&args](const std::string& v) {
                args.filter = v;
                std::replace(args.filter.begin(), args.filter.end(), '_', '-');
              })
      .option("--stamp-mode", "MODE",
              "hardware interval recovery: call-boundary (default)\n"
              "or lin-point (tickets at the linearizing instruction)",
              [&args](const std::string& v) { args.stamp_mode = v; })
      .option("--clock", "MODE",
              "hardware stamp clock: ticket (default, global\n"
              "atomic ticket) or tsc (calibrated per-thread TSC;\n"
              "intervals widened by the measured skew bound)",
              [&args](const std::string& v) { args.clock_mode = v; })
      .flag("--pin",
            "pin hardware capture threads (and calibration\n"
            "probes) to CPUs for stable TSC domains",
            &args.hw_options.pin_threads)
      .option("--reclaim", "POLICY",
              "reclamation policy the hardware structures run\n"
              "under: epoch (default) | hazard | pool",
              [&args](const std::string& v) { args.reclaim = v; })
      .option("--strategy", "S",
              "restrict to one strategy column of the structure\n"
              "matrix: coarse | optimistic | lockfree",
              [&args](const std::string& v) { args.strategy = v; })
      .option("--hw-ops", "N", "hardware ops per thread (default 2000)",
              [&args](const std::string& v) {
                args.hw_options.ops_per_thread = std::stoul(v);
                args.hw_ops_set = true;
              })
      .option("--hw-bursts", "N",
              "independent hardware capture rounds (default 1)",
              [&args](const std::string& v) {
                args.hw_options.bursts = std::stoul(v);
              })
      .option("--jitter", "K",
              "yield around every K-th hardware op (0 = off);\n"
              "widens call-boundary intervals, not lin-point brackets",
              [&args](const std::string& v) {
                args.hw_options.jitter_period = std::stoul(v);
              })
      .flag("--no-crashes", "disable crash plans", &args.no_crashes)
      .flag("--no-minimize", "report the first failing trace unshrunk",
            &args.no_minimize)
      .flag("--minimize-ops",
            "minimizer pre-pass: drop whole completed operations\n"
            "before ddmin",
            &args.minimize_ops)
      .flag("--smoke",
            "CI preset: reduced schedules, all workloads,\n"
            "hardware captures included",
            &args.smoke)
      .flag("--hw", "capture + check the hardware structures too", &args.hw)
      .option_string("--replay",
                     "strict-replay a pwf-trace/1 file and exit",
                     &args.replay_path)
      .option_string("--save-trace", "write the first witness trace to PATH",
                     &args.save_trace_path)
      .option_string("--out", "write a JSON report ('-' = stdout)",
                     &args.out_path)
      .flag("--help", "this message", &args.help)
      .alias("-h", "--help");
  return cli;
}

struct WorkloadReport {
  std::string name;
  bool expect_linearizable = false;
  check::ExploreResult result;
  bool fp_stable = false;  ///< witness replays to the same fingerprint twice
  bool pass = false;
  double wall_ms = 0.0;
};

int run_replay(const Args& args) {
  std::ifstream in(args.replay_path);
  if (!in) {
    std::cerr << "pwf_check: cannot open " << args.replay_path << "\n";
    return 2;
  }
  const check::ScheduleTrace trace = check::ScheduleTrace::parse(in);
  const check::Workload& workload = check::find_workload(trace.workload);
  const check::RunOutcome out =
      check::Session(workload, args.explore.check).replay(trace);
  std::cout << "workload:            " << workload.name << "\n"
            << "trace fingerprint:   " << trace.fingerprint() << "\n"
            << "history fingerprint: " << out.history.fingerprint() << "\n"
            << "verdict:             " << check::verdict_name(out.lin.verdict)
            << " (" << out.lin.nodes << " nodes)\n\n"
            << out.history.render();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const util::CliParser cli = make_parser(args);
  std::string error;
  if (!cli.parse(argc, argv, error)) {
    std::cerr << "pwf_check: " << error << "\n";
    cli.print_usage(std::cerr);
    return 2;
  }
  if (args.help) {
    cli.print_usage(std::cout);
    return 0;
  }
  if (args.no_crashes) args.explore.crashes = false;
  if (args.no_minimize) args.explore.minimize = false;
  if (args.minimize_ops) args.explore.minimize_options.drop_operations = true;
  if (!args.stamp_mode.empty()) {
    const auto mode = check::parse_stamp_mode(args.stamp_mode);
    if (!mode) {
      std::cerr << "pwf_check: unknown stamp mode '" << args.stamp_mode
                << "' (call-boundary | lin-point)\n";
      return 2;
    }
    args.hw_options.stamp = *mode;
  }
  if (!args.clock_mode.empty()) {
    const auto mode = check::parse_clock_mode(args.clock_mode);
    if (!mode) {
      std::cerr << "pwf_check: unknown clock mode '" << args.clock_mode
                << "' (ticket | tsc)\n";
      return 2;
    }
    args.hw_options.clock = *mode;
  }
  if (!args.reclaim.empty()) {
    const auto policy = mem::parse_reclaim_policy(args.reclaim);
    if (!policy) {
      std::cerr << "pwf_check: unknown reclaim policy '" << args.reclaim
                << "' (epoch | hazard | pool)\n";
      return 2;
    }
    args.hw_options.reclaim = *policy;
  }
  std::optional<lockfree::SyncStrategy> strategy_column;
  if (!args.strategy.empty()) {
    strategy_column = lockfree::parse_sync_strategy(args.strategy);
    if (!strategy_column) {
      std::cerr << "pwf_check: unknown strategy '" << args.strategy
                << "' (coarse | optimistic | lockfree)\n";
      return 2;
    }
  }
  // --strategy selects one column of the structure matrix: only twins of
  // catalog entries tagged with that strategy stay eligible.
  const std::vector<const check::CatalogEntry*> column =
      check::catalog_column(strategy_column);
  const auto in_column = [&](const std::string& name) {
    if (!strategy_column) return true;
    for (const check::CatalogEntry* e : column) {
      if ((e->sim && e->sim->workload == name) ||
          (e->hw && e->hw->structure == name)) {
        return true;
      }
    }
    return false;
  };
  if (args.list) {
    std::cout << "simulated workloads:\n";
    for (const check::Workload& w : check::workloads()) {
      std::cout << "  " << w.name << "  [spec: " << w.spec_kind << ", expect "
                << (w.expect_linearizable ? "LINEARIZABLE" : "violation")
                << "]\n      " << w.note << "\n";
    }
    std::cout << "hardware structures (--hw):\n";
    for (const check::HwStructure& s : check::HwSession::registry()) {
      std::cout << "  " << s.name << "  [spec: " << s.spec_kind << ", expect "
                << (s.expect_linearizable ? "LINEARIZABLE" : "violation")
                << "]\n      " << s.note << "\n";
    }
    return 0;
  }
  if (!args.replay_path.empty()) {
    try {
      return run_replay(args);
    } catch (const std::exception& ex) {
      std::cerr << "pwf_check: replay failed: " << ex.what() << "\n";
      return 2;
    }
  }

  if (args.smoke) {
    // The CI preset: every workload, crash plans on, minimization on,
    // hardware captures on — sized to finish well under a minute.
    args.explore.schedules = 40;
    args.hw = true;
    if (!args.hw_ops_set) args.hw_options.ops_per_thread = 400;
  }

  std::vector<WorkloadReport> reports;
  bool all_pass = true;
  bool saved_trace = false;
  const auto t0 = std::chrono::steady_clock::now();

  for (const check::Workload& workload : check::workloads()) {
    if (!matches_filter(workload.name, args.filter)) continue;
    if (!in_column(workload.name)) continue;
    WorkloadReport report;
    report.name = workload.name;
    report.expect_linearizable = workload.expect_linearizable;
    const auto w0 = std::chrono::steady_clock::now();
    try {
      const check::Session session(workload, args.explore.check);
      report.result = session.explore(args.explore);
      if (report.result.witness) {
        const auto again = session.replay(report.result.witness->trace);
        report.fp_stable = again.history.fingerprint() ==
                           report.result.witness->history_fingerprint;
      }
    } catch (const std::exception& ex) {
      std::cerr << "pwf_check: workload '" << workload.name
                << "' failed: " << ex.what() << "\n";
      return 2;
    }
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - w0)
                         .count();
    report.pass =
        report.result.as_expected(workload.expect_linearizable) &&
        report.result.unknowns == 0 &&
        (workload.expect_linearizable || report.fp_stable);
    all_pass = all_pass && report.pass;

    std::cout << workload.name << ": " << report.result.violations << "/"
              << report.result.schedules_run << " schedules non-linearizable"
              << (workload.expect_linearizable ? "" : " (mutant)") << " -> "
              << (report.pass ? "OK" : "FAIL") << "\n";
    if (report.result.witness) {
      const check::Witness& w = *report.result.witness;
      std::cout << "  witness: " << w.history_events << " events, "
                << w.trace.steps.size() << " steps, trace fp "
                << w.trace_fingerprint << ", history fp "
                << w.history_fingerprint
                << (report.fp_stable ? " (replay-stable)" : " (UNSTABLE)")
                << "\n";
      std::istringstream lines(w.rendered);
      for (std::string line; std::getline(lines, line);) {
        std::cout << "    " << line << "\n";
      }
      if (!args.save_trace_path.empty() && !saved_trace) {
        std::ofstream out(args.save_trace_path);
        if (!out) {
          std::cerr << "pwf_check: cannot open " << args.save_trace_path
                    << "\n";
          return 2;
        }
        w.trace.serialize(out);
        saved_trace = true;
        std::cout << "  trace written to " << args.save_trace_path << "\n";
      }
    }
    reports.push_back(std::move(report));
  }

  if (reports.empty() && !args.hw) {
    std::cerr << "pwf_check: no workload matches filter '" << args.filter
              << "' (see --list)\n";
    return 2;
  }

  std::vector<check::HwResult> hw_results;
  if (args.hw) {
    check::HwOptions hw_opts = args.hw_options;
    hw_opts.seed = args.explore.base_seed;
    for (const check::HwStructure& structure : check::HwSession::registry()) {
      if (!matches_filter(structure.name, args.filter)) continue;
      if (!in_column(structure.name)) continue;
      try {
        check::HwSession session(structure.name, hw_opts, args.explore.check);
        const check::HwResult& r = session.run();
        const bool ok = r.as_expected() && !r.lin.timed_out;
        all_pass = all_pass && ok;
        std::cout << "hw " << structure.name << " ["
                  << check::stamp_mode_name(r.stamp) << ", "
                  << check::clock_mode_name(r.clock) << ", "
                  << mem::reclaim_policy_name(r.reclaim) << "]: "
                  << check::verdict_name(r.lin.verdict)
                  << (structure.expect_linearizable ? "" : " (mutant)")
                  << " -> " << (ok ? "OK" : "FAIL") << "\n"
                  << "  " << r.total_ops << " ops, " << r.lin.parts
                  << " parts, " << r.lin.nodes << " nodes; slack median "
                  << r.median_slack << " mean " << r.mean_slack << " max "
                  << r.max_slack << " (boundary median "
                  << r.boundary_median_slack << "); stamped "
                  << r.stamped_ops << "/" << r.total_ops << "\n"
                  << "  time: capture " << r.capture_ms << " ms, check "
                  << r.check_ms << " ms\n";
        if (r.clock == check::ClockMode::kTsc) {
          std::cout << "  tsc: source "
                    << util::tsc_source_name(r.calibration.source)
                    << (r.calibration.fallback ? " (fallback)" : "")
                    << (r.calibration.serial_host ? " (serial host)" : "")
                    << ", epsilon " << r.calibration.epsilon
                    << " ticks, rate " << r.calibration.ticks_per_us
                    << " ticks/us\n";
        }
        if (r.lin.verdict == check::LinVerdict::kNotLinearizable &&
            r.witness.size() > 0) {
          std::cout << "  witness: " << r.witness.size() << " ops"
                    << (r.witness_minimized
                            ? " (minimized from " +
                                  std::to_string(r.history.size()) + ")"
                            : "")
                    << "\n";
          std::istringstream lines(r.witness.render());
          std::size_t printed = 0;
          for (std::string line; std::getline(lines, line);) {
            if (++printed > 30) {
              std::cout << "    ...\n";
              break;
            }
            std::cout << "    " << line << "\n";
          }
        }
        hw_results.push_back(r);
      } catch (const std::exception& ex) {
        std::cerr << "pwf_check: hw capture '" << structure.name
                  << "' failed: " << ex.what() << "\n";
        return 2;
      }
    }
    if (reports.empty() && hw_results.empty()) {
      std::cerr << "pwf_check: no hardware structure matches filter '"
                << args.filter << "' (see --list)\n";
      return 2;
    }
  }

  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::cout << "\npwf_check: "
            << (all_pass ? "all expectations met" : "EXPECTATION FAILURES")
            << " in " << static_cast<std::uint64_t>(total_ms) << " ms\n";

  if (!args.out_path.empty()) {
    std::ostringstream buffer;
    exp::JsonWriter json(buffer);
    json.begin_object();
    json.key("schema").value("pwf-check-report/1");
    json.key("base_seed").value(static_cast<std::uint64_t>(args.explore.base_seed));
    json.key("schedules").value(static_cast<std::uint64_t>(args.explore.schedules));
    json.key("shards").value(static_cast<std::uint64_t>(args.explore.check.shards));
    json.key("all_pass").value(all_pass);
    json.key("workloads").begin_array();
    for (const WorkloadReport& r : reports) {
      json.begin_object();
      json.key("name").value(r.name);
      json.key("expect_linearizable").value(r.expect_linearizable);
      json.key("schedules_run")
          .value(static_cast<std::uint64_t>(r.result.schedules_run));
      json.key("violations")
          .value(static_cast<std::uint64_t>(r.result.violations));
      json.key("unknowns")
          .value(static_cast<std::uint64_t>(r.result.unknowns));
      json.key("checker_nodes").value(r.result.nodes);
      json.key("pass").value(r.pass);
      json.key("wall_ms").value(r.wall_ms);
      if (r.result.witness) {
        const check::Witness& w = *r.result.witness;
        json.key("witness").begin_object();
        json.key("events").value(static_cast<std::uint64_t>(w.history_events));
        json.key("schedule_steps")
            .value(static_cast<std::uint64_t>(w.trace.steps.size()));
        json.key("trace_fingerprint").value(w.trace_fingerprint);
        json.key("history_fingerprint").value(w.history_fingerprint);
        json.key("replay_stable").value(r.fp_stable);
        json.key("trace").value(w.trace.serialize());
        json.key("history").value(w.rendered);
        json.end_object();
      }
      json.end_object();
    }
    json.end_array();
    json.key("hardware").begin_array();
    for (const check::HwResult& r : hw_results) {
      json.begin_object();
      json.key("structure").value(r.structure);
      json.key("stamp_mode").value(check::stamp_mode_name(r.stamp));
      json.key("clock").value(check::clock_mode_name(r.clock));
      json.key("reclaim").value(mem::reclaim_policy_name(r.reclaim));
      if (r.clock == check::ClockMode::kTsc) {
        json.key("calibration").begin_object();
        json.key("source").value(util::tsc_source_name(r.calibration.source));
        json.key("fallback").value(r.calibration.fallback);
        json.key("serial_host").value(r.calibration.serial_host);
        json.key("drift").value(r.calibration.drift);
        json.key("epsilon").value(r.calibration.epsilon);
        json.key("read_granularity").value(r.calibration.read_granularity);
        json.key("min_round_trip").value(r.calibration.min_round_trip);
        json.key("max_abs_offset").value(r.calibration.max_abs_offset);
        json.key("ticks_per_us").value(r.calibration.ticks_per_us);
        json.end_object();
      }
      json.key("verdict").value(check::verdict_name(r.lin.verdict));
      json.key("expect_linearizable").value(r.expect_linearizable);
      json.key("as_expected").value(r.as_expected());
      json.key("operations").value(static_cast<std::uint64_t>(r.total_ops));
      json.key("checked_operations")
          .value(static_cast<std::uint64_t>(r.history.size()));
      json.key("stamped_operations")
          .value(static_cast<std::uint64_t>(r.stamped_ops));
      json.key("parts").value(static_cast<std::uint64_t>(r.lin.parts));
      json.key("checker_nodes").value(r.lin.nodes);
      json.key("timed_out").value(r.lin.timed_out);
      // Capture vs check time breakdown: capture_ms is thread spawn to
      // join; check_ms is the verdict plus witness minimization.
      json.key("capture_ms").value(r.capture_ms);
      json.key("check_ms").value(r.check_ms);
      // Capture-interval slack distinguishes "linearizable" from
      // "possibly masked by widened intervals": an op with slack 0 had a
      // tight interval; large slack means the ticket stamps straddled
      // many foreign events and the verdict leans on that widening. In
      // lin-point mode the effective intervals are the stamp brackets,
      // and boundary_* report the call-boundary stats for comparison.
      json.key("mean_slack").value(r.mean_slack);
      json.key("max_slack").value(r.max_slack);
      json.key("median_slack").value(r.median_slack);
      json.key("boundary_mean_slack").value(r.boundary_mean_slack);
      json.key("boundary_max_slack").value(r.boundary_max_slack);
      json.key("boundary_median_slack").value(r.boundary_median_slack);
      if (r.lin.verdict == check::LinVerdict::kNotLinearizable &&
          r.witness.size() > 0) {
        json.key("witness").begin_object();
        json.key("operations")
            .value(static_cast<std::uint64_t>(r.witness.size()));
        json.key("minimized").value(r.witness_minimized);
        json.key("history").value(r.witness.render());
        json.end_object();
      }
      json.key("interval_slack").begin_array();
      for (const std::uint64_t slack : r.interval_slack) {
        if (slack == check::HwResult::kPendingSlack) {
          json.value("pending");
        } else {
          json.value(slack);
        }
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    buffer << "\n";
    if (args.out_path == "-") {
      std::cout << buffer.str();
    } else {
      std::ofstream out(args.out_path);
      if (!out) {
        std::cerr << "pwf_check: cannot open " << args.out_path
                  << " for writing\n";
        return 2;
      }
      out << buffer.str();
      std::cout << "report written to " << args.out_path << "\n";
    }
  }

  return all_pass ? 0 : 1;
}
