// pwf_check — the linearizability checking driver. Mirrors pwf_bench's
// flag conventions over the src/check subsystem: it explores randomized
// schedules (with crash plans) per workload, checks every captured
// history, minimizes failing traces, and reports per-workload verdicts.
//
//   pwf_check --list                  enumerate workloads + hw structures
//   pwf_check --filter stack,queue    substring selection (comma-separated)
//   pwf_check --schedules 100         schedules per workload (--trials)
//   pwf_check --steps N / --n N       override horizon / process count
//   pwf_check --seed 123              base seed
//   pwf_check --shards 4              checker threads (--threads); 0 = hw
//   pwf_check --smoke                 CI preset (small, < 60 s, all checks)
//   pwf_check --hw                    also capture + check hardware runs
//   pwf_check --replay t.trace        strict-replay a saved trace
//   pwf_check --save-trace PATH       save the first witness trace
//   pwf_check --out PATH              JSON report (pwf-check-report/1);
//                                     '-' means stdout
//
// Flag spellings are shared with pwf_bench via util::CliParser (--out,
// --seed, --threads, --filter, --trials mean the same thing in both).
//
// Exit status: 0 iff every selected workload matched its expectation
// (stock structures LINEARIZABLE everywhere, mutants caught with a
// replayable witness) and every hardware capture (if requested) passed.
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/explore.hpp"
#include "check/hw_capture.hpp"
#include "check/session.hpp"
#include "check/trace.hpp"
#include "check/workloads.hpp"
#include "exp/json.hpp"
#include "util/cli.hpp"

namespace {

using namespace pwf;
using util::matches_filter;

struct Args {
  check::ExploreOptions explore;
  std::string filter;
  std::string out_path;
  std::string replay_path;
  std::string save_trace_path;
  bool list = false;
  bool help = false;
  bool smoke = false;
  bool hw = false;
  bool no_crashes = false;
  bool no_minimize = false;
};

util::CliParser make_parser(Args& args) {
  util::CliParser cli("pwf_check");
  cli.flag("--list", "list workloads and hardware structures", &args.list)
      .option("--filter", "NAMES",
              "run workloads whose name contains any of the\n"
              "comma-separated substrings (default: all)",
              [&args](const std::string& v) { args.filter = v; })
      .option("--schedules", "N",
              "random schedules per workload (default 100)",
              [&args](const std::string& v) {
                args.explore.schedules = std::stoul(v);
              })
      .alias("--trials", "--schedules")
      .option("--steps", "N", "steps per schedule (default: per workload)",
              [&args](const std::string& v) {
                args.explore.steps = std::stoull(v);
              })
      .option("--n", "N", "processes (default: per workload)",
              [&args](const std::string& v) {
                args.explore.n = std::stoul(v);
              })
      .option("--seed", "N", "base seed (default 1)",
              [&args](const std::string& v) {
                args.explore.base_seed = std::stoull(v);
              })
      .option("--shards", "N",
              "checker worker threads for partitioned histories\n"
              "(0 = hardware, default 1)",
              [&args](const std::string& v) {
                args.explore.check.shards =
                    static_cast<std::size_t>(std::stoull(v));
              })
      .alias("--threads", "--shards")
      .option("--memo-budget", "N",
              "max memoized states per search (0 = unbounded)",
              [&args](const std::string& v) {
                args.explore.check.memo_budget = std::stoull(v);
              })
      .flag("--no-crashes", "disable crash plans", &args.no_crashes)
      .flag("--no-minimize", "report the first failing trace unshrunk",
            &args.no_minimize)
      .flag("--smoke",
            "CI preset: reduced schedules, all workloads,\n"
            "hardware captures included",
            &args.smoke)
      .flag("--hw", "capture + check the hardware structures too", &args.hw)
      .option_string("--replay",
                     "strict-replay a pwf-trace/1 file and exit",
                     &args.replay_path)
      .option_string("--save-trace", "write the first witness trace to PATH",
                     &args.save_trace_path)
      .option_string("--out", "write a JSON report ('-' = stdout)",
                     &args.out_path)
      .flag("--help", "this message", &args.help)
      .alias("-h", "--help");
  return cli;
}

struct WorkloadReport {
  std::string name;
  bool expect_linearizable = false;
  check::ExploreResult result;
  bool fp_stable = false;  ///< witness replays to the same fingerprint twice
  bool pass = false;
  double wall_ms = 0.0;
};

int run_replay(const Args& args) {
  std::ifstream in(args.replay_path);
  if (!in) {
    std::cerr << "pwf_check: cannot open " << args.replay_path << "\n";
    return 2;
  }
  const check::ScheduleTrace trace = check::ScheduleTrace::parse(in);
  const check::Workload& workload = check::find_workload(trace.workload);
  const check::RunOutcome out =
      check::Session(workload, args.explore.check).replay(trace);
  std::cout << "workload:            " << workload.name << "\n"
            << "trace fingerprint:   " << trace.fingerprint() << "\n"
            << "history fingerprint: " << out.history.fingerprint() << "\n"
            << "verdict:             " << check::verdict_name(out.lin.verdict)
            << " (" << out.lin.nodes << " nodes)\n\n"
            << out.history.render();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  const util::CliParser cli = make_parser(args);
  std::string error;
  if (!cli.parse(argc, argv, error)) {
    std::cerr << "pwf_check: " << error << "\n";
    cli.print_usage(std::cerr);
    return 2;
  }
  if (args.help) {
    cli.print_usage(std::cout);
    return 0;
  }
  if (args.no_crashes) args.explore.crashes = false;
  if (args.no_minimize) args.explore.minimize = false;
  if (args.list) {
    std::cout << "simulated workloads:\n";
    for (const check::Workload& w : check::workloads()) {
      std::cout << "  " << w.name << "  [spec: " << w.spec_kind << ", expect "
                << (w.expect_linearizable ? "LINEARIZABLE" : "violation")
                << "]\n      " << w.note << "\n";
    }
    std::cout << "hardware structures (--hw):\n";
    for (const std::string& s : check::hw_structures()) {
      std::cout << "  " << s << "\n";
    }
    return 0;
  }
  if (!args.replay_path.empty()) {
    try {
      return run_replay(args);
    } catch (const std::exception& ex) {
      std::cerr << "pwf_check: replay failed: " << ex.what() << "\n";
      return 2;
    }
  }

  if (args.smoke) {
    // The CI preset: every workload, crash plans on, minimization on,
    // hardware captures on — sized to finish well under a minute.
    args.explore.schedules = 40;
    args.hw = true;
  }

  std::vector<WorkloadReport> reports;
  bool all_pass = true;
  bool saved_trace = false;
  const auto t0 = std::chrono::steady_clock::now();

  for (const check::Workload& workload : check::workloads()) {
    if (!matches_filter(workload.name, args.filter)) continue;
    WorkloadReport report;
    report.name = workload.name;
    report.expect_linearizable = workload.expect_linearizable;
    const auto w0 = std::chrono::steady_clock::now();
    try {
      const check::Session session(workload, args.explore.check);
      report.result = session.explore(args.explore);
      if (report.result.witness) {
        const auto again = session.replay(report.result.witness->trace);
        report.fp_stable = again.history.fingerprint() ==
                           report.result.witness->history_fingerprint;
      }
    } catch (const std::exception& ex) {
      std::cerr << "pwf_check: workload '" << workload.name
                << "' failed: " << ex.what() << "\n";
      return 2;
    }
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - w0)
                         .count();
    report.pass =
        report.result.as_expected(workload.expect_linearizable) &&
        report.result.unknowns == 0 &&
        (workload.expect_linearizable || report.fp_stable);
    all_pass = all_pass && report.pass;

    std::cout << workload.name << ": " << report.result.violations << "/"
              << report.result.schedules_run << " schedules non-linearizable"
              << (workload.expect_linearizable ? "" : " (mutant)") << " -> "
              << (report.pass ? "OK" : "FAIL") << "\n";
    if (report.result.witness) {
      const check::Witness& w = *report.result.witness;
      std::cout << "  witness: " << w.history_events << " events, "
                << w.trace.steps.size() << " steps, trace fp "
                << w.trace_fingerprint << ", history fp "
                << w.history_fingerprint
                << (report.fp_stable ? " (replay-stable)" : " (UNSTABLE)")
                << "\n";
      std::istringstream lines(w.rendered);
      for (std::string line; std::getline(lines, line);) {
        std::cout << "    " << line << "\n";
      }
      if (!args.save_trace_path.empty() && !saved_trace) {
        std::ofstream out(args.save_trace_path);
        if (!out) {
          std::cerr << "pwf_check: cannot open " << args.save_trace_path
                    << "\n";
          return 2;
        }
        w.trace.serialize(out);
        saved_trace = true;
        std::cout << "  trace written to " << args.save_trace_path << "\n";
      }
    }
    reports.push_back(std::move(report));
  }

  if (reports.empty() && !args.hw) {
    std::cerr << "pwf_check: no workload matches filter '" << args.filter
              << "' (see --list)\n";
    return 2;
  }

  std::vector<check::HwCaptureResult> hw_results;
  if (args.hw) {
    check::HwCaptureOptions hw_opts;
    hw_opts.seed = args.explore.base_seed;
    if (args.smoke) hw_opts.ops_per_thread = 120;
    for (const std::string& structure : check::hw_structures()) {
      if (!matches_filter(structure, args.filter)) continue;
      try {
        check::HwCaptureResult r =
            check::hw_capture_run(structure, hw_opts, args.explore.check);
        const bool ok = r.lin.ok();
        all_pass = all_pass && ok;
        std::cout << "hw " << structure << ": "
                  << check::verdict_name(r.lin.verdict) << " ("
                  << r.history.size() << " ops, " << r.lin.parts
                  << " parts, " << r.lin.nodes << " nodes, slack mean "
                  << r.mean_slack << " max " << r.max_slack << ")\n";
        hw_results.push_back(std::move(r));
      } catch (const std::exception& ex) {
        std::cerr << "pwf_check: hw capture '" << structure
                  << "' failed: " << ex.what() << "\n";
        return 2;
      }
    }
  }

  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::cout << "\npwf_check: "
            << (all_pass ? "all expectations met" : "EXPECTATION FAILURES")
            << " in " << static_cast<std::uint64_t>(total_ms) << " ms\n";

  if (!args.out_path.empty()) {
    std::ostringstream buffer;
    exp::JsonWriter json(buffer);
    json.begin_object();
    json.key("schema").value("pwf-check-report/1");
    json.key("base_seed").value(static_cast<std::uint64_t>(args.explore.base_seed));
    json.key("schedules").value(static_cast<std::uint64_t>(args.explore.schedules));
    json.key("shards").value(static_cast<std::uint64_t>(args.explore.check.shards));
    json.key("all_pass").value(all_pass);
    json.key("workloads").begin_array();
    for (const WorkloadReport& r : reports) {
      json.begin_object();
      json.key("name").value(r.name);
      json.key("expect_linearizable").value(r.expect_linearizable);
      json.key("schedules_run")
          .value(static_cast<std::uint64_t>(r.result.schedules_run));
      json.key("violations")
          .value(static_cast<std::uint64_t>(r.result.violations));
      json.key("unknowns")
          .value(static_cast<std::uint64_t>(r.result.unknowns));
      json.key("checker_nodes").value(r.result.nodes);
      json.key("pass").value(r.pass);
      json.key("wall_ms").value(r.wall_ms);
      if (r.result.witness) {
        const check::Witness& w = *r.result.witness;
        json.key("witness").begin_object();
        json.key("events").value(static_cast<std::uint64_t>(w.history_events));
        json.key("schedule_steps")
            .value(static_cast<std::uint64_t>(w.trace.steps.size()));
        json.key("trace_fingerprint").value(w.trace_fingerprint);
        json.key("history_fingerprint").value(w.history_fingerprint);
        json.key("replay_stable").value(r.fp_stable);
        json.key("trace").value(w.trace.serialize());
        json.key("history").value(w.rendered);
        json.end_object();
      }
      json.end_object();
    }
    json.end_array();
    json.key("hardware").begin_array();
    for (const check::HwCaptureResult& r : hw_results) {
      json.begin_object();
      json.key("structure").value(r.structure);
      json.key("verdict").value(check::verdict_name(r.lin.verdict));
      json.key("operations").value(static_cast<std::uint64_t>(r.history.size()));
      json.key("parts").value(static_cast<std::uint64_t>(r.lin.parts));
      json.key("checker_nodes").value(r.lin.nodes);
      json.key("timed_out").value(r.lin.timed_out);
      // Capture-interval slack distinguishes "linearizable" from
      // "possibly masked by widened intervals": an op with slack 0 had a
      // tight interval; large slack means the ticket stamps straddled
      // many foreign events and the verdict leans on that widening.
      json.key("mean_slack").value(r.mean_slack);
      json.key("max_slack").value(r.max_slack);
      json.key("interval_slack").begin_array();
      for (const std::uint64_t slack : r.interval_slack) {
        if (slack == check::HwCaptureResult::kPendingSlack) {
          json.value("pending");
        } else {
          json.value(slack);
        }
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
    buffer << "\n";
    if (args.out_path == "-") {
      std::cout << buffer.str();
    } else {
      std::ofstream out(args.out_path);
      if (!out) {
        std::cerr << "pwf_check: cannot open " << args.out_path
                  << " for writing\n";
        return 2;
      }
      out << buffer.str();
      std::cout << "report written to " << args.out_path << "\n";
    }
  }

  return all_pass ? 0 : 1;
}
