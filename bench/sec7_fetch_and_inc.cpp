// Section 7 / Corollary 3 — the fetch-and-increment counter on augmented
// CAS: system latency W = Z(n-1) (the Ramanujan Q-function, which is
// sqrt(pi n / 2)(1 + o(1))) and individual latency n*W = O(n sqrt n).
//
// Sweep over n: exact global chain, the Z recurrence, the asymptotic, and
// simulation, plus the crash-tolerant variant of Corollary 2 (with k < n
// correct processes the latency depends only on k).
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

double simulate(std::size_t n, std::uint64_t seed, std::size_t crashes = 0) {
  Simulation::Options opts;
  opts.num_registers = FetchAndIncrement::registers_required();
  opts.seed = seed;
  Simulation sim(n, FetchAndIncrement::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  for (std::size_t c = 0; c < crashes; ++c) {
    sim.schedule_crash(1000 + c, n - 1 - c);
  }
  sim.run(100'000);
  sim.reset_stats();
  sim.run(1'500'000);
  return sim.report().system_latency();
}

}  // namespace

int main() {
  bench::print_header(
      "Section 7 / Corollary 3: fetch-and-increment latency",
      "Claim: W = Z(n-1) = RamanujanQ(n) ~ sqrt(pi n / 2); W_i = n W; with "
      "only k correct processes the bounds hold in k (Corollary 2).");
  bench::print_seed(2718);

  Table table({"n", "W simulated", "Z(n-1) exact", "chain W",
               "sqrt(pi n/2)", "sim/exact"});
  bool reproduced = true;
  for (std::size_t n : {2, 4, 8, 16, 32, 64}) {
    const double sim_w = simulate(n, 2718 + n);
    const double exact = theory::fai_system_latency_exact(n);
    const double chain_w =
        markov::system_latency(markov::build_fai_global_chain(n));
    const double asym = theory::fai_system_latency_asymptotic(n);
    table.add_row({fmt(n), fmt(sim_w, 3), fmt(exact, 3), fmt(chain_w, 3),
                   fmt(asym, 3), fmt(sim_w / exact, 3)});
    reproduced = reproduced && std::abs(sim_w - exact) < 0.03 * exact &&
                 std::abs(chain_w - exact) < 1e-6 * exact;
  }
  table.print(std::cout);

  std::cout << "\nCorollary 2 (crashes): n = 32 with c crashed processes "
               "behaves like k = 32 - c correct ones:\n";
  Table crash_table({"crashed c", "k = n-c", "W simulated", "Z(k-1) exact"});
  for (std::size_t c : {0, 8, 16, 24}) {
    const double sim_w = simulate(32, 999 + c, c);
    const double exact = theory::fai_system_latency_exact(32 - c);
    crash_table.add_row(
        {fmt(c), fmt(std::size_t{32} - c), fmt(sim_w, 3), fmt(exact, 3)});
    reproduced = reproduced && std::abs(sim_w - exact) < 0.05 * exact;
  }
  crash_table.print(std::cout);

  bench::print_verdict(reproduced,
                       "W = Z(n-1) to within noise at every n, matching the "
                       "Ramanujan-Q asymptotics, including under crashes");
  return reproduced ? 0 : 1;
}
