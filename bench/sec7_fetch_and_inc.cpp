// Section 7 / Corollary 3 — the fetch-and-increment counter on augmented
// CAS: system latency W = Z(n-1) (the Ramanujan Q-function, which is
// sqrt(pi n / 2)(1 + o(1))) and individual latency n*W = O(n sqrt n).
//
// Sweep over n: exact global chain, the Z recurrence, the asymptotic, and
// simulation, plus the crash-tolerant variant of Corollary 2 (with k < n
// correct processes the latency depends only on k).
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

double simulate(std::size_t n, std::uint64_t seed, const RunOptions& options,
                std::size_t crashes = 0) {
  Simulation::Options opts;
  opts.num_registers = FetchAndIncrement::registers_required();
  opts.seed = seed;
  Simulation sim(n, FetchAndIncrement::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  for (std::size_t c = 0; c < crashes; ++c) {
    sim.schedule_crash(1000 + c, n - 1 - c);
  }
  sim.run(options.horizon(100'000, 20'000));
  sim.reset_stats();
  sim.run(options.horizon(1'500'000, 300'000));
  return sim.report().system_latency();
}

class Sec7FetchAndInc final : public exp::Experiment {
 public:
  std::string name() const override { return "sec7_fetch_and_inc"; }
  std::string artifact() const override {
    return "Section 7 / Corollary 3: fetch-and-increment latency";
  }
  std::string claim() const override {
    return "Claim: W = Z(n-1) = RamanujanQ(n) ~ sqrt(pi n / 2); W_i = n W; "
           "with only k correct processes the bounds hold in k "
           "(Corollary 2).";
  }
  std::uint64_t default_seed() const override { return 2718; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<std::size_t> ns =
        options.quick ? std::vector<std::size_t>{2, 4, 8, 16, 32}
                      : std::vector<std::size_t>{2, 4, 8, 16, 32, 64};
    std::vector<Trial> grid;
    for (std::size_t n : ns) {
      Trial t;
      t.id = "n=" + fmt(n);
      t.params = {{"n", static_cast<double>(n)}};
      t.seed = base + n;
      grid.push_back(std::move(t));
    }
    for (std::size_t c : {0, 8, 16, 24}) {
      Trial t;
      t.id = "crashes c=" + fmt(c);
      t.params = {{"n", 32.0}, {"crashes", static_cast<double>(c)}};
      // Old binary seeded the crash runs independently of the sweep.
      t.seed = exp::derive_seed(base, 1000 + c);
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    const auto it = trial.params.find("crashes");
    if (it != trial.params.end()) {
      const auto c = static_cast<std::size_t>(it->second);
      return {{"w_sim", simulate(n, trial.seed, options, c)}};
    }
    return {{"w_sim", simulate(n, trial.seed, options)},
            {"w_chain", markov::system_latency(
                            markov::build_fai_global_chain(n))}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    Table table({"n", "W simulated", "Z(n-1) exact", "chain W",
                 "sqrt(pi n/2)", "sim/exact"});
    bool reproduced = true;
    for (const TrialResult& r : results) {
      if (r.trial.params.count("crashes")) continue;
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const double sim_w = r.metrics.at("w_sim");
      const double chain_w = r.metrics.at("w_chain");
      const double exact = theory::fai_system_latency_exact(n);
      table.add_row({fmt(n), fmt(sim_w, 3), fmt(exact, 3), fmt(chain_w, 3),
                     fmt(theory::fai_system_latency_asymptotic(n), 3),
                     fmt(sim_w / exact, 3)});
      reproduced = reproduced && std::abs(sim_w - exact) < 0.03 * exact &&
                   std::abs(chain_w - exact) < 1e-6 * exact;
    }
    table.print(os);

    os << "\nCorollary 2 (crashes): n = 32 with c crashed processes "
          "behaves like k = 32 - c correct ones:\n";
    Table crash_table({"crashed c", "k = n-c", "W simulated",
                       "Z(k-1) exact"});
    for (const TrialResult& r : results) {
      if (!r.trial.params.count("crashes")) continue;
      const auto c = static_cast<std::size_t>(r.trial.params.at("crashes"));
      const double sim_w = r.metrics.at("w_sim");
      const double exact = theory::fai_system_latency_exact(32 - c);
      crash_table.add_row(
          {fmt(c), fmt(std::size_t{32} - c), fmt(sim_w, 3), fmt(exact, 3)});
      reproduced = reproduced && std::abs(sim_w - exact) < 0.05 * exact;
    }
    crash_table.print(os);

    Verdict v;
    v.reproduced = reproduced;
    v.detail =
        "W = Z(n-1) to within noise at every n, matching the Ramanujan-Q "
        "asymptotics, including under crashes";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Sec7FetchAndInc>());

}  // namespace
