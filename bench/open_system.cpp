// Open-system latency curves: queue length and completion latency under
// arrivals, departures, crashes, and restarts, at populations up to
// 10^6 live processes — the scale the SoA ProcessTable engine exists
// for. Two machines are swept:
//
//   * parallel(8) — Algorithm 4 with q = 8 work steps per operation.
//     System latency (steps between consecutive completions anywhere)
//     is O(q), independent of the population.
//   * scan-validate(0,1) — SCU with an empty preamble and scan width 1.
//     Theorem 4 puts its system latency at O(q + s * sqrt(n)); with
//     q = 0, s = 1 the curve is a pure sqrt(n).
//
// Each grid point farms independent replicas across the exp pool
// (exp::parallel_for) and folds their OpenLatencyReports in replica
// order — the merged report is thread-count invariant, so only the
// wall-clock steps/sec is host-dependent. Churn is stationary: the
// arrival rate equals the expected departure mass (lambda = n * mu), so
// the mean queue length stays near n over the whole horizon.
//
// The verdict checks the latency *shape*: the scan-validate power-law
// exponent over n lands in [0.3, 0.7], the parallel(8) curve stays flat
// (largest-to-smallest-n ratio <= 3), mean queue length holds within
// 30% of n (stationarity), and per-process fairness at the smallest n
// has mean op latency within 2x of n * system latency.
// scripts/bench_open_system.sh serializes the sweep into
// BENCH_open_system.json, the committed baseline.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/open_system.hpp"
#include "core/scheduler.hpp"
#include "exp/pool.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

enum class Machine : int { kParallel8 = 0, kScanValidate = 1 };
constexpr const char* kMachineLabels[] = {"parallel(8)", "scan-validate(0,1)"};
constexpr int kNumMachines = 2;

const std::vector<std::size_t> kGridFull{1'000, 100'000, 1'000'000};
const std::vector<std::size_t> kGridQuick{1'000, 10'000};

const std::vector<std::size_t>& grid_n(const RunOptions& options) {
  return options.quick ? kGridQuick : kGridFull;
}

/// Replicas per grid point: small populations are cheap, so average
/// away more scheduling noise; the 10^6 cell runs once.
std::size_t replicas_for(std::size_t n) {
  if (n <= 10'000) return 4;
  if (n <= 100'000) return 2;
  return 1;
}

OpenSimulation::Options make_options(Machine machine, std::size_t n,
                                     std::uint64_t horizon,
                                     std::uint64_t seed) {
  OpenSimulation::Options o;
  if (machine == Machine::kParallel8) {
    o.kind = CompactKind::kParallel;
    o.q = 8;
  } else {
    o.kind = CompactKind::kScu;  // scan-validate: empty preamble
    o.q = 0;
    o.s = 1;
  }
  o.capacity = n + n / 16 + 16;  // headroom for arrival bursts
  o.initial_n = n;
  o.seed = seed;
  o.order = LiveOrder::dense;
  // Stationary churn: expected lifetime 4 * horizon, so ~n/4 tenants
  // turn over per run and lambda = n * mu keeps the population level.
  const double mu = 0.25 / static_cast<double>(horizon);
  o.arrivals =
      std::make_unique<PoissonArrivals>(static_cast<double>(n) * mu);
  o.depart_rate = mu;
  o.crash_rate = mu / 4.0;
  o.restart_prob = 0.75;
  o.restart_delay_rate = 1e-3;
  o.queue_sample_every = horizon / 256 + 1;
  return o;
}

class OpenSystem final : public exp::Experiment {
 public:
  std::string name() const override { return "open_system"; }
  std::string artifact() const override {
    return "Open-system engine: queue-length and completion-latency "
           "curves under arrival/departure/crash/restart churn, "
           "n up to 10^6 live processes";
  }
  std::string claim() const override {
    return "Claim: with a stochastic scheduler the open system is "
           "practically wait-free at scale — system latency is O(q) for "
           "parallel(q) and O(s * sqrt(n)) for SCU (Theorem 4 shape), "
           "per-process latency is fair (mean ~ n * system latency), "
           "and stationary churn keeps the queue near its nominal n.";
  }
  std::uint64_t default_seed() const override { return 20140806; }

  // steps/sec is part of the record, and the 10^6 cell wants the host
  // to itself; replicas still fan out over the worker pool internally.
  bool exclusive() const override { return true; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const auto& ns = grid_n(options);
    std::vector<Trial> grid;
    for (int m = 0; m < kNumMachines; ++m) {
      for (std::size_t ni = 0; ni < ns.size(); ++ni) {
        Trial t;
        t.id = std::string(kMachineLabels[m]) + " n=" + std::to_string(ns[ni]);
        t.params = {{"machine", static_cast<double>(m)},
                    {"n", static_cast<double>(ns[ni])}};
        t.seed = exp::derive_seed(
            base, static_cast<std::uint64_t>(m * 16 + static_cast<int>(ni)));
        grid.push_back(std::move(t));
      }
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto machine =
        static_cast<Machine>(static_cast<int>(trial.params.at("machine")));
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    // At least 32 steps per nominal process: the first completion needs
    // q process-steps, so a horizon flat in n would leave the 10^6 cell
    // inside its warm-up transient and inflate the mean gap.
    const std::uint64_t horizon =
        std::max<std::uint64_t>(options.horizon(4'000'000, 400'000),
                                32 * static_cast<std::uint64_t>(n));
    const std::size_t reps = replicas_for(n);

    std::vector<OpenLatencyReport> reports(reps);
    const auto t0 = std::chrono::steady_clock::now();
    exp::parallel_for(reps, options.threads, [&](std::size_t r) {
      OpenSimulation sim(
          std::make_unique<UniformScheduler>(),
          make_options(machine, n, horizon,
                       exp::derive_seed(trial.seed, r)));
      sim.run(horizon);
      reports[r] = sim.report();
    });
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    OpenLatencyReport merged;  // replica order: thread-count invariant
    for (const OpenLatencyReport& r : reports) merged.merge(r);

    return {
        {"steps_per_sec", static_cast<double>(merged.steps) / sec},
        {"system_latency", merged.system_latency()},
        {"op_mean", merged.mean_op_latency()},
        {"op_p50", static_cast<double>(merged.op_latency.quantile(0.5))},
        {"op_p99", static_cast<double>(merged.op_latency.quantile(0.99))},
        {"op_p999", static_cast<double>(merged.op_latency.quantile(0.999))},
        {"mean_queue", merged.mean_queue_length()},
        {"queue_peak", static_cast<double>(merged.queue_peak)},
        {"completions", static_cast<double>(merged.completions)},
        {"arrivals", static_cast<double>(merged.arrivals)},
        {"departures", static_cast<double>(merged.departures)},
        {"crashes", static_cast<double>(merged.crashes)},
        {"restarts", static_cast<double>(merged.restarts)},
        {"shed", static_cast<double>(merged.shed)},
        {"abandoned", static_cast<double>(merged.abandoned)},
    };
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& options, std::ostream& os) const override {
    const auto& ns = grid_n(options);
    // metric rows indexed [machine][n-index]
    std::vector<std::vector<Metrics>> cells(
        kNumMachines, std::vector<Metrics>(ns.size()));
    for (const TrialResult& r : results) {
      const int m = static_cast<int>(r.trial.params.at("machine"));
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      std::size_t ni = 0;
      while (ns[ni] != n) ++ni;
      cells[static_cast<std::size_t>(m)][ni] = r.metrics;
    }

    os << "open-system latency under stationary churn "
          "(latencies in steps)\n\n";
    Table table({"machine", "n", "sys lat", "op p50", "op p99", "op p999",
                 "mean queue", "arr", "dep", "crash", "restart", "aband",
                 "Msteps/s"});
    Verdict verdict;
    bool queues_stationary = true;
    for (int m = 0; m < kNumMachines; ++m) {
      for (std::size_t ni = 0; ni < ns.size(); ++ni) {
        const Metrics& c = cells[static_cast<std::size_t>(m)][ni];
        table.add_row(
            {kMachineLabels[m], fmt(ns[ni]), fmt(c.at("system_latency"), 1),
             fmt(c.at("op_p50")), fmt(c.at("op_p99")), fmt(c.at("op_p999")),
             fmt(c.at("mean_queue"), 0), fmt(c.at("arrivals"), 0),
             fmt(c.at("departures"), 0), fmt(c.at("crashes"), 0),
             fmt(c.at("restarts"), 0), fmt(c.at("abandoned"), 0),
             fmt(c.at("steps_per_sec") / 1e6, 2)});
        const double nominal = static_cast<double>(ns[ni]);
        const double q_ratio = c.at("mean_queue") / nominal;
        queues_stationary =
            queues_stationary && q_ratio >= 0.7 && q_ratio <= 1.3;
        const std::string key_base =
            std::string(m == 0 ? "par" : "scu") + "_n" + std::to_string(ns[ni]);
        verdict.summary["sys_latency_" + key_base] = c.at("system_latency");
        verdict.summary["steps_per_sec_" + key_base] = c.at("steps_per_sec");
      }
    }
    table.print(os);

    // Theorem 4 shape: scan-validate(0,1) system latency ~ sqrt(n).
    std::vector<double> xs, ys;
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      xs.push_back(static_cast<double>(ns[ni]));
      ys.push_back(cells[1][ni].at("system_latency"));
    }
    const LinearFit fit = fit_power_law(xs, ys);
    os << "\nscan-validate sys latency ~ n^" << fmt(fit.slope, 3)
       << " (Theorem 4: sqrt(n) => exponent 0.5)\n";

    // parallel(q) stays flat: population-independent system latency.
    const double par_ratio = cells[0][ns.size() - 1].at("system_latency") /
                             cells[0][0].at("system_latency");
    os << "parallel(8) sys latency ratio n=" << ns.back() << " vs n="
       << ns.front() << ": " << fmt(par_ratio, 2) << " (flat => ~1)\n";

    // Fairness at the smallest n: every process completes, so the mean
    // per-process latency is the system latency diluted by n.
    const double fairness =
        cells[0][0].at("op_mean") /
        (static_cast<double>(ns[0]) * cells[0][0].at("system_latency"));
    os << "fairness at n=" << ns[0] << ": op mean / (n * sys lat) = "
       << fmt(fairness, 2) << " (uniform scheduler => ~1)\n";

    const bool shape_ok = fit.slope >= 0.3 && fit.slope <= 0.7;
    const bool flat_ok = par_ratio <= 3.0;
    const bool fair_ok = fairness >= 0.5 && fairness <= 2.0;
    const bool scale_ok =
        options.quick ||
        cells[0][ns.size() - 1].at("queue_peak") >= 1'000'000.0;
    verdict.reproduced =
        shape_ok && flat_ok && fair_ok && queues_stationary && scale_ok;
    verdict.summary["scu_latency_exponent"] = fit.slope;
    verdict.summary["scu_latency_fit_r2"] = fit.r_squared;
    verdict.summary["parallel_flatness_ratio"] = par_ratio;
    verdict.summary["fairness_ratio"] = fairness;
    verdict.summary["queues_stationary"] = queues_stationary ? 1.0 : 0.0;
    verdict.detail = "scu latency ~ n^" + fmt(fit.slope, 2) +
                     ", parallel flatness " + fmt(par_ratio, 2) +
                     "x, fairness " + fmt(fairness, 2) + "x at n=" +
                     std::to_string(ns[0]);
    return verdict;
  }
};

const exp::RegisterExperiment reg(std::make_unique<OpenSystem>());

}  // namespace
