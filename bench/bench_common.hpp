// Shared helpers for the experiment-reproduction binaries. Every bench
// prints: a header identifying the paper artifact it regenerates, the
// seed(s) used, a paper-vs-measured table, and a SHAPE verdict line that
// states whether the qualitative claim reproduced.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace pwf::bench {

inline void print_header(const std::string& artifact,
                         const std::string& claim) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << '\n'
            << claim << '\n'
            << "==============================================================="
               "=\n";
}

inline void print_verdict(bool reproduced, const std::string& detail) {
  std::cout << "\nSHAPE " << (reproduced ? "REPRODUCED" : "NOT REPRODUCED")
            << ": " << detail << "\n\n";
}

inline void print_seed(std::uint64_t seed) {
  std::cout << "(seed = " << seed << ")\n";
}

}  // namespace pwf::bench
