// Theorem 5 — the scan-validate component SCU(0,1) has system latency
// O(sqrt n) under the uniform stochastic scheduler (and Corollary 1:
// O(s sqrt n) with s scan steps; individual latency n times that).
//
// Three independent estimates of W(n) are compared:
//   exact   — stationary analysis of the (a, b) system chain;
//   sim     — discrete-event simulation of the algorithm;
//   game    — mean phase length of the iterated balls-into-bins game.
// A log-log fit reports the growth exponent (0.5 predicted), and the
// fairness column reports max_i W_i / (n W) (1.0 predicted by Lemma 7).
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "ballsbins/game.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "exp/registry.hpp"
#include "markov/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

class Thm5ScanValidate final : public exp::Experiment {
 public:
  std::string name() const override { return "thm5_scan_validate"; }
  std::string artifact() const override {
    return "Theorem 5 / Corollary 1: scan-validate system latency is "
           "Theta(sqrt n)";
  }
  std::string claim() const override {
    return "Claim: W(n) grows like sqrt(n) (exponent 0.5) and every "
           "process's individual latency is n * W (fairness ratio 1).";
  }
  std::uint64_t default_seed() const override { return 7; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<std::size_t> ns =
        options.quick ? std::vector<std::size_t>{2, 4, 8, 16, 32}
                      : std::vector<std::size_t>{2, 4, 8, 16, 32, 64};
    std::vector<Trial> grid;
    for (std::size_t n : ns) {
      Trial t;
      t.id = "n=" + fmt(n);
      t.params = {{"n", static_cast<double>(n)}};
      t.seed = base + n;
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));

    Simulation::Options opts;
    opts.num_registers = ScuAlgorithm::registers_required(n, 1);
    opts.seed = trial.seed;
    Simulation sim(n, scan_validate_factory(),
                   std::make_unique<UniformScheduler>(), opts);
    sim.run(options.horizon(200'000, 50'000));
    sim.reset_stats();
    sim.run(options.horizon(2'000'000, 400'000));
    const double w_sim = sim.report().system_latency();
    const double fairness = sim.report().max_individual_latency() /
                            (static_cast<double>(n) * w_sim);

    ballsbins::IteratedBallsBins game(
        n, Xoshiro256pp(trial.seed + 63));  // 63 = old seed gap (70+n)-(7+n)
    const auto records = game.run_phases(options.horizon(60'000, 10'000));
    double game_mean = 0.0;
    for (const auto& rec : records) game_mean += static_cast<double>(rec.length);
    game_mean /= static_cast<double>(records.size());

    const double exact =
        markov::system_latency(markov::build_scan_validate_system_chain(n));
    return {{"exact", exact},
            {"simulated", w_sim},
            {"game", game_mean},
            {"fairness", fairness}};
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    std::vector<double> ns, sims;
    Table table({"n", "exact chain W", "simulated W", "balls-bins W",
                 "W/sqrt(n)", "fairness max W_i/(n W)"});
    for (const TrialResult& r : results) {
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const Metrics& m = r.metrics;
      ns.push_back(static_cast<double>(n));
      sims.push_back(m.at("simulated"));
      table.add_row({fmt(n), fmt(m.at("exact"), 3), fmt(m.at("simulated"), 3),
                     fmt(m.at("game"), 3),
                     fmt(m.at("exact") / std::sqrt(static_cast<double>(n)), 3),
                     fmt(m.at("fairness"), 3)});
    }
    table.print(os);

    const LinearFit fit = fit_power_law(ns, sims);
    os << "log-log fit: W(n) ~ n^" << fmt(fit.slope, 3)
       << "  (R^2 = " << fmt(fit.r_squared, 4)
       << "; Theorem 5 predicts exponent 0.5)\n";

    Verdict v;
    v.reproduced = fit.slope > 0.40 && fit.slope < 0.60;
    v.detail =
        "sqrt-n scaling of the system latency, agreement of chain / "
        "simulation / balls-into-bins, and n-fairness";
    v.summary = {{"growth_exponent", fit.slope},
                 {"r_squared", fit.r_squared}};
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<Thm5ScanValidate>());

}  // namespace
