// Theorem 5 — the scan-validate component SCU(0,1) has system latency
// O(sqrt n) under the uniform stochastic scheduler (and Corollary 1:
// O(s sqrt n) with s scan steps; individual latency n times that).
//
// Three independent estimates of W(n) are compared:
//   exact   — stationary analysis of the (a, b) system chain;
//   sim     — discrete-event simulation of the algorithm;
//   game    — mean phase length of the iterated balls-into-bins game.
// A log-log fit reports the growth exponent (0.5 predicted), and the
// fairness column reports max_i W_i / (n W) (1.0 predicted by Lemma 7).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "ballsbins/game.hpp"
#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "markov/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

struct Measurement {
  double simulated = 0.0;
  double fairness = 0.0;  // max_i W_i / (n * W)
};

Measurement simulate(std::size_t n, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = ScuAlgorithm::registers_required(n, 1);
  opts.seed = seed;
  Simulation sim(n, scan_validate_factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(200'000);
  sim.reset_stats();
  sim.run(2'000'000);
  Measurement m;
  m.simulated = sim.report().system_latency();
  m.fairness = sim.report().max_individual_latency() /
               (static_cast<double>(n) * m.simulated);
  return m;
}

double game_phase_mean(std::size_t n, std::uint64_t seed) {
  ballsbins::IteratedBallsBins game(n, Xoshiro256pp(seed));
  const auto records = game.run_phases(60'000);
  double mean = 0.0;
  for (const auto& rec : records) mean += static_cast<double>(rec.length);
  return mean / static_cast<double>(records.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Theorem 5 / Corollary 1: scan-validate system latency is "
      "Theta(sqrt n)",
      "Claim: W(n) grows like sqrt(n) (exponent 0.5) and every process's "
      "individual latency is n * W (fairness ratio 1).");
  bench::print_seed(7);

  std::vector<double> ns, sims;
  Table table({"n", "exact chain W", "simulated W", "balls-bins W",
               "W/sqrt(n)", "fairness max W_i/(n W)"});
  for (std::size_t n : {2, 4, 8, 16, 32, 64}) {
    const double exact =
        markov::system_latency(markov::build_scan_validate_system_chain(n));
    const Measurement m = simulate(n, 7 + n);
    const double game = game_phase_mean(n, 70 + n);
    ns.push_back(static_cast<double>(n));
    sims.push_back(m.simulated);
    table.add_row({fmt(n), fmt(exact, 3), fmt(m.simulated, 3), fmt(game, 3),
                   fmt(exact / std::sqrt(static_cast<double>(n)), 3),
                   fmt(m.fairness, 3)});
  }
  table.print(std::cout);

  const LinearFit fit = fit_power_law(ns, sims);
  std::cout << "log-log fit: W(n) ~ n^" << fmt(fit.slope, 3)
            << "  (R^2 = " << fmt(fit.r_squared, 4)
            << "; Theorem 5 predicts exponent 0.5)\n";

  const bool reproduced = fit.slope > 0.40 && fit.slope < 0.60;
  bench::print_verdict(reproduced,
                       "sqrt-n scaling of the system latency, agreement of "
                       "chain / simulation / balls-into-bins, and n-fairness");
  return reproduced ? 0 : 1;
}
