// Section 8 exploration — "it would be interesting to explore whether
// there exist concurrent algorithms which avoid the Theta(sqrt n)
// contention factor in the latency, and whether such algorithms are
// efficient in practice."
//
// Answer probed here with the statistical counter of reference [4] (Dice,
// Lev, Moir): increments go to per-process subcounters (wait-free, one
// step, zero contention); reads sum all n. Against the CAS counter's
// W = Z(n-1) ~ sqrt(pi n/2) for *every* operation, the statistical
// counter's cost is (1 - r) + r * n for read fraction r — so it avoids
// the sqrt(n) factor exactly when reads are rarer than ~1/sqrt(n),
// and the crossover moves as predicted.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/statistical_counter.hpp"
#include "core/theory.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;

double cas_counter_latency(std::size_t n, std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = FetchAndIncrement::registers_required();
  opts.seed = seed;
  Simulation sim(n, FetchAndIncrement::factory(),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  sim.reset_stats();
  sim.run(600'000);
  return sim.report().system_latency();
}

double statistical_latency(std::size_t n, double read_fraction,
                           std::uint64_t seed) {
  Simulation::Options opts;
  opts.num_registers = StatisticalCounter::registers_required(n);
  opts.seed = seed;
  Simulation sim(n, StatisticalCounter::factory(read_fraction, seed),
                 std::make_unique<UniformScheduler>(), opts);
  sim.run(100'000);
  sim.reset_stats();
  sim.run(600'000);
  return sim.report().system_latency();
}

}  // namespace

int main() {
  bench::print_header(
      "Section 8 exploration: escaping the Theta(sqrt n) contention factor",
      "The statistical counter (paper ref [4]) makes increments O(1) and "
      "reads O(n); it beats the CAS counter whenever reads are rare.");
  bench::print_seed(88);

  std::cout << "System latency (steps/op) by counter design and read "
               "fraction r:\n";
  Table table({"n", "CAS counter Z(n-1)", "stat r=0", "stat r=0.02",
               "stat r=0.10", "stat r=0.50", "winner at r=0.02"});
  bool shape_ok = true;
  for (std::size_t n : {4, 8, 16, 32, 64, 128}) {
    const double cas = cas_counter_latency(n, 88 + n);
    const double s0 = statistical_latency(n, 0.0, 880 + n);
    const double s2 = statistical_latency(n, 0.02, 881 + n);
    const double s10 = statistical_latency(n, 0.10, 882 + n);
    const double s50 = statistical_latency(n, 0.50, 883 + n);
    table.add_row({fmt(n), fmt(cas, 2), fmt(s0, 2), fmt(s2, 2), fmt(s10, 2),
                   fmt(s50, 2), s2 < cas ? "statistical" : "CAS"});
    // Shape: r = 0 is O(1) (always ~1); r = 0.5 is Theta(n); the CAS
    // counter sits at Theta(sqrt n) in between.
    shape_ok = shape_ok && std::abs(s0 - 1.0) < 0.05 &&
               std::abs(s50 - (0.5 + 0.5 * n)) < 0.12 * (0.5 + 0.5 * n);
  }
  table.print(std::cout);

  // Crossover analysis: statistical beats CAS iff (1-r) + r*n < Z(n-1),
  // i.e. r < (Z(n-1) - 1) / (n - 1) ~ sqrt(pi/(2n)).
  std::cout << "\npredicted crossover read fraction r*(n) = "
               "(Z(n-1)-1)/(n-1) ~ sqrt(pi/2n):\n";
  Table cross({"n", "r* exact", "sqrt(pi/(2n))"});
  for (std::size_t n : {8, 32, 128, 512}) {
    const double z = theory::fai_system_latency_exact(n);
    cross.add_row({fmt(n), fmt((z - 1.0) / (static_cast<double>(n) - 1.0), 4),
                   fmt(std::sqrt(3.14159265 / (2.0 * static_cast<double>(n))), 4)});
  }
  cross.print(std::cout);

  bench::print_verdict(
      shape_ok,
      "the sqrt(n) factor is avoidable (O(1) increments via per-process "
      "subcounters) at the price of O(n) reads; which design wins is set "
      "by the read fraction against r* ~ sqrt(pi/2n) — answering the "
      "paper's closing question for this object");
  return shape_ok ? 0 : 1;
}
