// Section 8 exploration — "it would be interesting to explore whether
// there exist concurrent algorithms which avoid the Theta(sqrt n)
// contention factor in the latency, and whether such algorithms are
// efficient in practice."
//
// Answer probed here with the statistical counter of reference [4] (Dice,
// Lev, Moir): increments go to per-process subcounters (wait-free, one
// step, zero contention); reads sum all n. Against the CAS counter's
// W = Z(n-1) ~ sqrt(pi n/2) for *every* operation, the statistical
// counter's cost is (1 - r) + r * n for read fraction r — so it avoids
// the sqrt(n) factor exactly when reads are rarer than ~1/sqrt(n),
// and the crossover moves as predicted.
#include <cmath>
#include <memory>
#include <ostream>
#include <vector>

#include "core/algorithms.hpp"
#include "core/simulation.hpp"
#include "core/statistical_counter.hpp"
#include "core/theory.hpp"
#include "exp/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace pwf;
using namespace pwf::core;
using pwf::exp::Metrics;
using pwf::exp::RunOptions;
using pwf::exp::Trial;
using pwf::exp::TrialResult;
using pwf::exp::Verdict;

const std::vector<double> kReadFractions{0.0, 0.02, 0.10, 0.50};

std::string rkey(double r) { return "stat_r" + fmt(100.0 * r, 0); }

class ExploreContention final : public exp::Experiment {
 public:
  std::string name() const override { return "explore_contention"; }
  std::string artifact() const override {
    return "Section 8 exploration: escaping the Theta(sqrt n) contention "
           "factor";
  }
  std::string claim() const override {
    return "The statistical counter (paper ref [4]) makes increments O(1) "
           "and reads O(n); it beats the CAS counter whenever reads are "
           "rare.";
  }
  std::uint64_t default_seed() const override { return 88; }

  std::vector<Trial> trials(const RunOptions& options) const override {
    const std::uint64_t base = options.base_seed(default_seed());
    const std::vector<std::size_t> ns =
        options.quick ? std::vector<std::size_t>{4, 8, 16, 32, 64}
                      : std::vector<std::size_t>{4, 8, 16, 32, 64, 128};
    std::vector<Trial> grid;
    for (std::size_t n : ns) {
      Trial t;
      t.id = "n=" + fmt(n);
      t.params = {{"n", static_cast<double>(n)}};
      t.seed = base + n;
      grid.push_back(std::move(t));
    }
    return grid;
  }

  Metrics run_trial(const Trial& trial,
                    const RunOptions& options) const override {
    const auto n = static_cast<std::size_t>(trial.params.at("n"));
    auto latency = [&](const StepMachineFactory& factory,
                       std::size_t registers, std::uint64_t seed) {
      Simulation::Options opts;
      opts.num_registers = registers;
      opts.seed = seed;
      Simulation sim(n, factory, std::make_unique<UniformScheduler>(), opts);
      sim.run(options.horizon(100'000, 20'000));
      sim.reset_stats();
      sim.run(options.horizon(600'000, 120'000));
      return sim.report().system_latency();
    };

    Metrics m{{"cas", latency(FetchAndIncrement::factory(),
                              FetchAndIncrement::registers_required(),
                              trial.seed)}};
    // Old binary: stat runs at n used seeds 880+n..883+n; keep them
    // distinct per read fraction relative to the trial seed.
    std::uint64_t offset = 792;  // 880 - 88
    for (double r : kReadFractions) {
      const std::uint64_t seed = trial.seed + offset++;
      m[rkey(r)] = latency(StatisticalCounter::factory(r, seed),
                           StatisticalCounter::registers_required(n), seed);
    }
    return m;
  }

  Verdict analyze(const std::vector<TrialResult>& results,
                  const RunOptions& /*options*/, std::ostream& os) const
      override {
    os << "System latency (steps/op) by counter design and read "
          "fraction r:\n";
    Table table({"n", "CAS counter Z(n-1)", "stat r=0", "stat r=0.02",
                 "stat r=0.10", "stat r=0.50", "winner at r=0.02"});
    bool shape_ok = true;
    for (const TrialResult& r : results) {
      const auto n = static_cast<std::size_t>(r.trial.params.at("n"));
      const Metrics& m = r.metrics;
      table.add_row({fmt(n), fmt(m.at("cas"), 2), fmt(m.at(rkey(0.0)), 2),
                     fmt(m.at(rkey(0.02)), 2), fmt(m.at(rkey(0.10)), 2),
                     fmt(m.at(rkey(0.50)), 2),
                     m.at(rkey(0.02)) < m.at("cas") ? "statistical"
                                                    : "CAS"});
      // Shape: r = 0 is O(1) (always ~1); r = 0.5 is Theta(n); the CAS
      // counter sits at Theta(sqrt n) in between.
      const double expected_half = 0.5 + 0.5 * static_cast<double>(n);
      shape_ok = shape_ok && std::abs(m.at(rkey(0.0)) - 1.0) < 0.05 &&
                 std::abs(m.at(rkey(0.50)) - expected_half) <
                     0.12 * expected_half;
    }
    table.print(os);

    // Crossover analysis: statistical beats CAS iff (1-r) + r*n < Z(n-1),
    // i.e. r < (Z(n-1) - 1) / (n - 1) ~ sqrt(pi/(2n)).
    os << "\npredicted crossover read fraction r*(n) = "
          "(Z(n-1)-1)/(n-1) ~ sqrt(pi/2n):\n";
    Table cross({"n", "r* exact", "sqrt(pi/(2n))"});
    for (std::size_t n : {8, 32, 128, 512}) {
      const double z = theory::fai_system_latency_exact(n);
      cross.add_row(
          {fmt(n), fmt((z - 1.0) / (static_cast<double>(n) - 1.0), 4),
           fmt(std::sqrt(3.14159265 / (2.0 * static_cast<double>(n))), 4)});
    }
    cross.print(os);

    Verdict v;
    v.reproduced = shape_ok;
    v.detail =
        "the sqrt(n) factor is avoidable (O(1) increments via per-process "
        "subcounters) at the price of O(n) reads; which design wins is set "
        "by the read fraction against r* ~ sqrt(pi/2n) — answering the "
        "paper's closing question for this object";
    return v;
  }
};

const exp::RegisterExperiment reg(std::make_unique<ExploreContention>());

}  // namespace
